//! RL-based CTR locality predictor (paper §4.2, Algorithm 1).

use crate::cet::Cet;
use crate::params::{CtrRewards, RlParams};
use crate::qtable::QTable;
use cosmos_common::hash::hash_address;
use cosmos_common::{LineAddr, SplitMix64};
use cosmos_telemetry::Telemetry;

/// A CTR locality classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Locality {
    /// Likely to be re-referenced soon — retain in the LCR-CTR cache.
    Good,
    /// Unlikely to be re-referenced — prioritize for eviction.
    Bad,
}

impl Locality {
    /// The Q-table action index (bad = 0, good = 1).
    #[inline]
    pub const fn action(self) -> usize {
        match self {
            Locality::Bad => 0,
            Locality::Good => 1,
        }
    }

    /// Converts an action index back into a classification.
    ///
    /// # Panics
    ///
    /// Panics if `action > 1`.
    #[inline]
    pub const fn from_action(action: usize) -> Self {
        match action {
            0 => Locality::Bad,
            1 => Locality::Good,
            // cosmos-lint: allow(P2,H4): documented contract of a const fn — callers pass 0 or 1
            _ => panic!("invalid action"),
        }
    }

    /// Whether this is [`Locality::Good`].
    #[inline]
    pub const fn is_good(self) -> bool {
        matches!(self, Locality::Good)
    }

    /// Short display name ("Good" / "Bad"), used by snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            Locality::Good => "Good",
            Locality::Bad => "Bad",
        }
    }

    /// Parses a name produced by [`Locality::name`].
    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "Good" => Ok(Locality::Good),
            "Bad" => Ok(Locality::Bad),
            other => Err(format!("unknown locality `{other}`")),
        }
    }
}

/// The outcome of one prediction: classification plus the 8-bit score the
/// LCR-CTR cache stores next to the line, and the evidence behind the
/// decision (Q-pair at decision time, the reward applied) so eviction
/// events can be traced back to the RL state that produced them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocalityDecision {
    /// Predicted locality.
    pub locality: Locality,
    /// Quantized confidence score (|Q| of the chosen action).
    pub score: u8,
    /// Decision ordinal: the predictor's 0-based prediction count when
    /// this classification was made. Unique per predictor instance.
    pub id: u64,
    /// Q-value of the Good action at decision time (before TD updates).
    pub q_good: f32,
    /// Q-value of the Bad action at decision time (before TD updates).
    pub q_bad: f32,
    /// Reward applied by Algorithm 1 for this decision.
    pub reward: f32,
}

/// Counters for the locality predictor (feeds paper Figures 9 and 13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtrLocalityStats {
    /// Total CTR accesses classified.
    pub predictions: u64,
    /// Classified good.
    pub predicted_good: u64,
    /// CET hits observed (ground-truth good locality).
    pub cet_hits: u64,
    /// CET evictions observed.
    pub cet_evictions: u64,
    /// Predictions that agreed with the CET outcome (hit↔good, miss↔bad).
    pub agreements: u64,
}

impl CtrLocalityStats {
    /// Fraction of accesses classified good.
    pub fn good_fraction(&self) -> f64 {
        cosmos_common::stats::ratio(self.predicted_good, self.predictions)
    }

    /// Agreement rate between predictions and CET ground truth.
    pub fn agreement_rate(&self) -> f64 {
        cosmos_common::stats::ratio(self.agreements, self.predictions)
    }

    /// Encodes the counters for snapshots.
    pub fn to_json(&self) -> cosmos_common::json::Value {
        cosmos_common::json!({
            "predictions": (self.predictions),
            "predicted_good": (self.predicted_good),
            "cet_hits": (self.cet_hits),
            "cet_evictions": (self.cet_evictions),
            "agreements": (self.agreements),
        })
    }

    /// Decodes counters produced by [`CtrLocalityStats::to_json`].
    pub fn from_json(v: &cosmos_common::json::Value) -> Result<Self, String> {
        use cosmos_common::json::codec;
        Ok(Self {
            predictions: codec::u64_field(v, "predictions")?,
            predicted_good: codec::u64_field(v, "predicted_good")?,
            cet_hits: codec::u64_field(v, "cet_hits")?,
            cet_evictions: codec::u64_field(v, "cet_evictions")?,
            agreements: codec::u64_field(v, "agreements")?,
        })
    }

    /// Counts accumulated since `baseline`, for warmup-excluding
    /// measurement windows. Each subtraction is checked in every build
    /// profile (`cosmos_common::stats::window_sub`): a field that went
    /// backwards means a counter reset, and the window would be garbage.
    pub fn since(&self, baseline: &CtrLocalityStats) -> CtrLocalityStats {
        use cosmos_common::stats::window_sub;
        CtrLocalityStats {
            predictions: window_sub(self.predictions, baseline.predictions),
            predicted_good: window_sub(self.predicted_good, baseline.predicted_good),
            cet_hits: window_sub(self.cet_hits, baseline.cet_hits),
            cet_evictions: window_sub(self.cet_evictions, baseline.cet_evictions),
            agreements: window_sub(self.agreements, baseline.agreements),
        }
    }
}

/// The CTR locality agent: Q-table + CET, implementing Algorithm 1 in a
/// single `classify` call per CTR access.
///
/// # Examples
///
/// ```
/// use cosmos_rl::{CtrLocalityPredictor, params::RlParams};
/// use cosmos_common::LineAddr;
/// let mut p = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 8192, 0, 3);
/// let d = p.classify(LineAddr::new(1 << 34));
/// assert!(d.score <= 255);
/// ```
#[derive(Clone, Debug)]
pub struct CtrLocalityPredictor {
    qtable: QTable,
    cet: Cet,
    params: RlParams,
    rewards: CtrRewards,
    rng: SplitMix64,
    stats: CtrLocalityStats,
    telemetry: Telemetry,
}

impl CtrLocalityPredictor {
    /// Creates the predictor with Table-1 rewards, a CET of `cet_entries`,
    /// and a ±`radius`-line neighbourhood.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid or `cet_entries` is zero.
    pub fn new(params: RlParams, cet_entries: usize, radius: u64, seed: u64) -> Self {
        Self::with_rewards(params, CtrRewards::table1(), cet_entries, radius, seed)
    }

    /// Creates the predictor with explicit rewards (for sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid or `cet_entries` is zero.
    pub fn with_rewards(
        params: RlParams,
        rewards: CtrRewards,
        cet_entries: usize,
        radius: u64,
        seed: u64,
    ) -> Self {
        params.validate();
        Self {
            qtable: QTable::new(params.num_states),
            cet: Cet::new(cet_entries, radius),
            params,
            rewards,
            rng: SplitMix64::new(seed),
            stats: CtrLocalityStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; each `classify` then reports its
    /// action and reward (`rl.ctr.*` metrics + sampled `rl_ctr_action`
    /// events). Observation only — decisions and training are unaffected.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CtrLocalityStats {
        &self.stats
    }

    /// The CET (read access, for diagnostics).
    pub fn cet(&self) -> &Cet {
        &self.cet
    }

    /// The Q-table (read access).
    pub fn qtable(&self) -> &QTable {
        &self.qtable
    }

    /// Classifies one CTR access and trains on it — the full Algorithm 1:
    /// decide (ε-greedy), check the CET neighbourhood for the reward,
    /// TD-update bootstrapped on `CET.head`, insert into the CET, and apply
    /// the eviction reward if the insertion displaced an entry.
    ///
    /// The CET records counter-line addresses; Algorithm 1's
    /// `ctr_addr ± 32` window is byte-granular, i.e. within the same 64 B
    /// counter line, so the default radius is 0 (exact counter-block
    /// match) with `radius` allowing wider spatial windows for sweeps. A
    /// CET hit therefore means "this counter block was re-referenced
    /// within the last `cet_entries` CTR accesses" — exactly the
    /// cacheability signal the LCR-CTR cache needs.
    ///
    /// The state index is hashed once and shared by the decision, both TD
    /// updates, and the score; the post-update Q-value flows out of
    /// [`QTable::update_toward`] so the table is never re-indexed.
    // cosmos-lint: hot
    pub fn classify(&mut self, ctr_line: LineAddr) -> LocalityDecision {
        let id = self.stats.predictions;
        self.stats.predictions += 1;
        let s = self.state_of(ctr_line);

        // Decision (lines 3-8). The Q-pair is captured *before* the TD
        // updates below: it is the evidence the decision was made on, not
        // the post-training values.
        let [q_bad, q_good] = self.qtable.pair(s);
        let action = if self.rng.chance(self.params.epsilon as f64) {
            Locality::from_action(self.rng.next_index(2))
        } else {
            Locality::from_action(self.qtable.best_action(s))
        };
        if action.is_good() {
            self.stats.predicted_good += 1;
        }

        // Training: CET neighbourhood check (lines 9-15).
        let hit = self.cet.check_nearby(ctr_line.index());
        let r = match (hit, action) {
            (true, Locality::Good) => {
                self.stats.cet_hits += 1;
                self.stats.agreements += 1;
                self.rewards.r_hg
            }
            (true, Locality::Bad) => {
                self.stats.cet_hits += 1;
                self.rewards.r_hb
            }
            (false, Locality::Good) => self.rewards.r_mg,
            (false, Locality::Bad) => {
                self.stats.agreements += 1;
                self.rewards.r_mb
            }
        };

        self.telemetry
            .rl_ctr_action(id, action.is_good(), r, q_good, q_bad);

        // Bootstrap on CET.head (lines 16-17).
        let boot = match self.cet.head() {
            Some((s2, _a2)) => self.qtable.max_q(s2),
            None => 0.0,
        };
        let target = r + self.params.gamma * boot;
        let mut q_sel = self
            .qtable
            .update_toward(s, action.action(), target, self.params.alpha);

        // Insert and handle eviction rewards (lines 18-23).
        if let Some(evicted) = self.cet.insert(ctr_line.index(), s, action) {
            self.stats.cet_evictions += 1;
            let r_evict = match evicted.action {
                Locality::Good => self.rewards.r_eg,
                Locality::Bad => self.rewards.r_eb,
            };
            let boot2 = match self.cet.head() {
                Some((s2, _)) => self.qtable.max_q(s2),
                None => 0.0,
            };
            let target2 = r_evict + self.params.gamma * boot2;
            let q_evict = self.qtable.update_toward(
                evicted.state,
                evicted.action.action(),
                target2,
                self.params.alpha,
            );
            // The evicted entry can alias the entry just trained (same
            // state and action); the score must see the *final* value.
            if evicted.state == s && evicted.action == action {
                q_sel = q_evict;
            }
        }

        LocalityDecision {
            locality: action,
            // Scale x4 before quantizing: CTR-locality Q-values live in a
            // narrow band (|r|max/(1-gamma) ~= 40 for the Table-1 rewards),
            // and the LCR cache ranks *within* the good class by this
            // score, so spending the 8-bit range on the occupied band
            // sharpens the ranking at zero hardware cost.
            score: (q_sel.abs() * 4.0).clamp(0.0, 255.0) as u8,
            id,
            q_good,
            q_bad,
            reward: r,
        }
    }

    /// The hashed RL state of a CTR line.
    #[inline]
    pub fn state_of(&self, ctr_line: LineAddr) -> usize {
        hash_address(ctr_line.base(), self.params.num_states)
    }

    /// Serializes the agent's learned state — Q-table, CET, RNG position,
    /// and statistics — for snapshots. Parameters and rewards are not
    /// stored; they are reconstructed from the config at restore time.
    pub fn save_state(&self) -> cosmos_common::json::Value {
        cosmos_common::json!({
            "qtable": (self.qtable.save_state()),
            "cet": (self.cet.save_state()),
            "rng": (self.rng.state()),
            "stats": (self.stats.to_json()),
        })
    }

    /// Restores state produced by [`CtrLocalityPredictor::save_state`] into
    /// a predictor constructed with the same parameters.
    pub fn load_state(&mut self, v: &cosmos_common::json::Value) -> Result<(), String> {
        use cosmos_common::json::codec;
        self.qtable.load_state(codec::field(v, "qtable")?)?;
        self.cet.load_state(codec::field(v, "cet")?)?;
        self.rng = SplitMix64::new(codec::u64_field(v, "rng")?);
        self.stats = CtrLocalityStats::from_json(codec::field(v, "stats")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTR_BASE: u64 = 1 << 34;

    fn predictor() -> CtrLocalityPredictor {
        CtrLocalityPredictor::new(
            RlParams {
                epsilon: 0.0,
                ..RlParams::ctr_defaults()
            },
            64,
            0,
            5,
        )
    }

    fn ctr(i: u64) -> LineAddr {
        LineAddr::new(CTR_BASE + i)
    }

    #[test]
    fn hot_ctr_learns_good_locality() {
        let mut p = predictor();
        for _ in 0..100 {
            p.classify(ctr(4));
        }
        let d = p.classify(ctr(4));
        assert_eq!(d.locality, Locality::Good, "repeated CTR must become good");
    }

    #[test]
    fn cold_stream_learns_bad_locality() {
        let mut p = predictor();
        // A long stream of never-repeating counter blocks.
        let mut last = LocalityDecision {
            locality: Locality::Good,
            score: 0,
            id: 0,
            q_good: 0.0,
            q_bad: 0.0,
            reward: 0.0,
        };
        for i in 0..2000u64 {
            last = p.classify(ctr(1000 + i));
        }
        assert_eq!(last.locality, Locality::Bad);
        assert!(p.stats().good_fraction() < 0.3);
    }

    #[test]
    fn mixed_stream_separates_hot_and_cold() {
        let mut p = predictor();
        let hot = ctr(5);
        let mut rng = cosmos_common::SplitMix64::new(3);
        for _ in 0..3000 {
            p.classify(hot);
            p.classify(ctr(10_000 + rng.next_below(1 << 30)));
        }
        assert_eq!(p.classify(hot).locality, Locality::Good);
        let cold = p.classify(ctr(999_999_999));
        assert_eq!(cold.locality, Locality::Bad);
    }

    #[test]
    fn spatial_neighbours_count_with_radius() {
        let mut p = CtrLocalityPredictor::new(
            RlParams {
                epsilon: 0.0,
                ..RlParams::ctr_defaults()
            },
            64,
            2, // ±2 counter lines
            5,
        );
        // Alternate between two counter lines 2 apart: each access finds
        // the other in the CET neighbourhood.
        for _ in 0..200 {
            p.classify(ctr(100));
            p.classify(ctr(102));
        }
        assert!(p.stats().cet_hits > 300, "neighbour hits must register");
        assert_eq!(p.classify(ctr(100)).locality, Locality::Good);
    }

    #[test]
    fn zero_radius_requires_exact_block() {
        let mut p = predictor();
        for _ in 0..200 {
            p.classify(ctr(100));
            p.classify(ctr(101));
        }
        // Both blocks repeat individually, so both CET-hit on re-access.
        assert!(p.stats().cet_hits > 300);
    }

    #[test]
    fn eviction_rewards_fire() {
        let mut p = predictor(); // CET capacity 64
        for i in 0..200u64 {
            p.classify(ctr(i * 1000));
        }
        assert!(p.stats().cet_evictions > 0);
    }

    #[test]
    fn score_reflects_confidence() {
        let mut p = predictor();
        for _ in 0..200 {
            p.classify(ctr(0));
        }
        let d = p.classify(ctr(0));
        assert!(d.score > 0, "confident prediction must carry a score");
    }

    /// A restored predictor must continue exactly where the original left
    /// off — same ε-greedy coin flips, same Q-values, same CET contents.
    #[test]
    fn snapshot_restores_predictor_exactly() {
        let mut live = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 64, 0, 9);
        for i in 0..2000u64 {
            live.classify(ctr(i % 37));
        }
        let saved = live.save_state();
        let mut restored = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 64, 0, 9);
        restored.load_state(&saved).unwrap();
        for i in 0..2000u64 {
            let line = ctr(i % 23);
            assert_eq!(live.classify(line), restored.classify(line), "access {i}");
        }
        assert_eq!(live.stats(), restored.stats());
        assert_eq!(live.cet().len(), restored.cet().len());
    }

    #[test]
    fn snapshot_rejects_wrong_geometry() {
        let mut live = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 64, 0, 9);
        live.classify(ctr(1));
        let saved = live.save_state();
        // Different CET capacity.
        let mut wrong = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 128, 0, 9);
        assert!(wrong.load_state(&saved).unwrap_err().contains("geometry"));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut p = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 64, 0, 9);
            let mut seq = Vec::new();
            for i in 0..500u64 {
                seq.push(p.classify(ctr(i % 17)).locality);
            }
            seq
        };
        assert_eq!(run(), run());
    }
}
