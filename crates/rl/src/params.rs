//! RL hyperparameters and reward tables (paper Table 1).

/// Learning hyperparameters of one agent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RlParams {
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration rate ε (ε-greedy).
    pub epsilon: f32,
    /// Number of Q-table states (power of two).
    pub num_states: usize,
}

impl RlParams {
    /// Table-1 defaults for the data location predictor:
    /// α=0.09, γ=0.88, ε=0.1.
    pub const fn data_defaults() -> Self {
        Self {
            alpha: 0.09,
            gamma: 0.88,
            epsilon: 0.1,
            num_states: 16_384,
        }
    }

    /// Table-1 defaults for the CTR locality predictor:
    /// α=0.05, γ=0.35, ε=0.001.
    pub const fn ctr_defaults() -> Self {
        Self {
            alpha: 0.05,
            gamma: 0.35,
            epsilon: 0.001,
            num_states: 16_384,
        }
    }

    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics when α or γ leave `(0, 1]`, ε leaves `[0, 1]`, or the state
    /// count is not a power of two.
    pub fn validate(&self) {
        assert!(self.alpha > 0.0 && self.alpha <= 1.0, "alpha out of range");
        assert!(self.gamma >= 0.0 && self.gamma <= 1.0, "gamma out of range");
        assert!(
            self.epsilon >= 0.0 && self.epsilon <= 1.0,
            "epsilon out of range"
        );
        assert!(
            self.num_states.is_power_of_two(),
            "num_states must be a power of two"
        );
    }
}

/// Rewards of the data location predictor (paper Table 1).
///
/// Naming follows the paper: `h`/`m` = the data actually *hit* on-chip /
/// *missed* to DRAM; `i`/`o` = the prediction said on-chip ("in") /
/// off-chip ("out").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataRewards {
    /// Data on-chip, predicted on-chip (correct): +9.
    pub r_hi: f32,
    /// Data on-chip, predicted off-chip (wrong): −20.
    pub r_ho: f32,
    /// Data off-chip, predicted off-chip (correct): +12.
    pub r_mo: f32,
    /// Data off-chip, predicted on-chip (wrong): −30.
    pub r_mi: f32,
}

impl DataRewards {
    /// Table-1 values.
    pub const fn table1() -> Self {
        Self {
            r_hi: 9.0,
            r_ho: -20.0,
            r_mo: 12.0,
            r_mi: -30.0,
        }
    }
}

impl Default for DataRewards {
    fn default() -> Self {
        Self::table1()
    }
}

/// Rewards of the CTR locality predictor (paper Table 1).
///
/// `h`/`m`/`e` = CET hit / CET miss / CET eviction; `g`/`b` = the
/// prediction said good / bad locality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CtrRewards {
    /// CET hit, predicted good (correct): +13.
    pub r_hg: f32,
    /// CET hit, predicted bad (wrong): −12.
    pub r_hb: f32,
    /// CET miss, predicted good (wrong): −16.
    pub r_mg: f32,
    /// CET miss, predicted bad (correct): +20.
    pub r_mb: f32,
    /// CET eviction of an entry predicted good (wrong): −22.
    pub r_eg: f32,
    /// CET eviction of an entry predicted bad (correct): +26.
    pub r_eb: f32,
}

impl CtrRewards {
    /// Table-1 values.
    pub const fn table1() -> Self {
        Self {
            r_hg: 13.0,
            r_hb: -12.0,
            r_mg: -16.0,
            r_mb: 20.0,
            r_eg: -22.0,
            r_eb: 26.0,
        }
    }
}

impl Default for CtrRewards {
    fn default() -> Self {
        Self::table1()
    }
}

/// Combined reward table (both agents), for sweeps.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RewardTable {
    /// Data location predictor rewards.
    pub data: DataRewards,
    /// CTR locality predictor rewards.
    pub ctr: CtrRewards,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let d = RlParams::data_defaults();
        assert_eq!((d.alpha, d.gamma, d.epsilon), (0.09, 0.88, 0.1));
        let c = RlParams::ctr_defaults();
        assert_eq!((c.alpha, c.gamma, c.epsilon), (0.05, 0.35, 0.001));
        d.validate();
        c.validate();
        let r = DataRewards::table1();
        assert_eq!((r.r_mo, r.r_mi, r.r_ho, r.r_hi), (12.0, -30.0, -20.0, 9.0));
        let r = CtrRewards::table1();
        assert_eq!(
            (r.r_hg, r.r_hb, r.r_mg, r.r_mb, r.r_eg, r.r_eb),
            (13.0, -12.0, -16.0, 20.0, -22.0, 26.0)
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        RlParams {
            alpha: 0.0,
            ..RlParams::data_defaults()
        }
        .validate();
    }
}
