//! Tabular reinforcement-learning substrate for COSMOS.
//!
//! The paper's two predictors are small tabular RL agents over hashed
//! physical-address states (16,384 states × 2 actions each):
//!
//! - [`DataLocationPredictor`] (paper §4.4, Algorithm 3): after every L1
//!   miss, predicts whether the data is **on-chip** (L2/LLC) or
//!   **off-chip** (DRAM). Off-chip predictions let the memory controller
//!   start the CTR access immediately, removing the L2+LLC latency from the
//!   critical path — and, as a side effect, populating the CTR cache with
//!   *hot* counters.
//! - [`CtrLocalityPredictor`] (paper §4.2, Algorithm 1): classifies each
//!   CTR access as **good** or **bad** locality, trained against the
//!   [`Cet`] (CTR Evaluation Table) — an LRU buffer that answers "was this
//!   CTR (or a neighbour within ±32 lines) accessed again recently?". The
//!   predictions drive the LCR-CTR cache's replacement (Algorithm 2).
//!
//! Both agents are ε-greedy with the Table-1 hyperparameters as defaults
//! ([`params::RlParams`], [`params::RewardTable`]), and both store Q-values
//! in a dense [`QTable`] that can report hardware-style 8-bit quantized
//! scores.
//!
//! # Examples
//!
//! ```
//! use cosmos_rl::{DataLocationPredictor, DataLocation, params::RlParams};
//! use cosmos_common::PhysAddr;
//!
//! let mut p = DataLocationPredictor::new(RlParams::data_defaults(), 1);
//! let addr = PhysAddr::new(0x4000);
//! let pred = p.predict(addr);
//! // ... the hierarchy resolves the access ...
//! p.learn(addr, pred, DataLocation::OffChip);
//! ```

pub mod cet;
pub mod data_loc;
pub mod locality;
pub mod params;
pub mod qtable;
pub mod quantized;

pub use cet::Cet;
pub use data_loc::{DataLocation, DataLocationPredictor, DataLocationStats};
pub use locality::{CtrLocalityPredictor, CtrLocalityStats, Locality, LocalityDecision};
pub use qtable::QTable;
pub use quantized::QuantizedQTable;
