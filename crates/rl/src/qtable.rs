//! Dense Q-table over hashed address states.

/// A `num_states × 2` table of Q-values.
///
/// Values are learned as `f32`; [`QTable::quantized`] reports the
/// hardware-style 8-bit score (the paper stores two 8-bit Q-values per
/// entry, 16 bits/entry — Table 2).
///
/// Storage is one flat `Vec<f32>` with the two actions of a state adjacent
/// (`q[2s]`, `q[2s+1]`): each access touches exactly one 8-byte entry pair,
/// and [`QTable::pair`] hands both action values to callers in a single
/// load so predict/score/update paths index the table once per access.
///
/// # Examples
///
/// ```
/// use cosmos_rl::QTable;
/// let mut q = QTable::new(1024);
/// q.update_toward(5, 1, 10.0, 0.5);
/// assert_eq!(q.best_action(5), 1);
/// ```
#[derive(Clone, Debug)]
pub struct QTable {
    q: Vec<f32>,
}

impl QTable {
    /// Creates a zero-initialized table.
    ///
    /// # Panics
    ///
    /// Panics if `num_states` is zero.
    pub fn new(num_states: usize) -> Self {
        assert!(num_states > 0, "Q-table must have states");
        Self {
            q: vec![0.0; num_states * 2],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.q.len() / 2
    }

    /// Both action values of `state` in one load.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    // cosmos-lint: hot
    #[inline]
    pub fn pair(&self, state: usize) -> [f32; 2] {
        [self.q[2 * state], self.q[2 * state + 1]]
    }

    /// The Q-value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    #[inline]
    pub fn q(&self, state: usize, action: usize) -> f32 {
        assert!(action < 2, "action {action} out of range");
        self.q[2 * state + action]
    }

    /// The greedy action for `state` (ties resolve to action 0).
    #[inline]
    pub fn best_action(&self, state: usize) -> usize {
        let [a, b] = self.pair(state);
        usize::from(b > a)
    }

    /// `max_a Q(state, a)`.
    #[inline]
    pub fn max_q(&self, state: usize) -> f32 {
        let [a, b] = self.pair(state);
        a.max(b)
    }

    /// TD update: `Q ← Q + α (target − Q)`. Returns the updated value, so
    /// hot callers that need the post-update Q (e.g. for the locality
    /// score) don't re-index the table.
    // cosmos-lint: hot
    #[inline]
    pub fn update_toward(&mut self, state: usize, action: usize, target: f32, alpha: f32) -> f32 {
        let q = &mut self.q[2 * state + action];
        *q += alpha * (target - *q);
        *q
    }

    /// The 8-bit quantized magnitude of `(state, action)`'s Q-value, as the
    /// hardware would store next to the cache line: |Q| clamped to [0, 255].
    #[inline]
    pub fn quantized(&self, state: usize, action: usize) -> u8 {
        self.q(state, action).abs().clamp(0.0, 255.0) as u8
    }

    /// Resets all values to zero.
    pub fn reset(&mut self) {
        self.q.iter_mut().for_each(|e| *e = 0.0);
    }

    /// Serializes the table for snapshots. Q-values are stored as their IEEE
    /// `f32` bit patterns, so the restore is bit-exact — no decimal
    /// round-trip can perturb subsequent learning.
    pub fn save_state(&self) -> cosmos_common::json::Value {
        use cosmos_common::json::codec;
        cosmos_common::json!({
            "q_bits": (codec::from_u64s(self.q.iter().map(|f| u64::from(f.to_bits())))),
        })
    }

    /// Restores state produced by [`QTable::save_state`] into a table of the
    /// same size.
    pub fn load_state(&mut self, v: &cosmos_common::json::Value) -> Result<(), String> {
        use cosmos_common::json::codec;
        let bits = codec::u32_array(v, "q_bits")?;
        codec::check_len("q_bits", bits.len(), self.q.len())?;
        self.q = bits.into_iter().map(f32::from_bits).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_prefers_action_zero() {
        let q = QTable::new(16);
        assert_eq!(q.best_action(3), 0);
        assert_eq!(q.max_q(3), 0.0);
    }

    #[test]
    fn update_moves_toward_target() {
        let mut q = QTable::new(4);
        q.update_toward(0, 0, 10.0, 0.5);
        assert_eq!(q.q(0, 0), 5.0);
        let after = q.update_toward(0, 0, 10.0, 0.5);
        assert_eq!(q.q(0, 0), 7.5);
        assert_eq!(after, 7.5, "update must return the post-update value");
    }

    #[test]
    fn best_action_tracks_learning() {
        let mut q = QTable::new(4);
        q.update_toward(1, 1, 4.0, 1.0);
        assert_eq!(q.best_action(1), 1);
        q.update_toward(1, 0, 9.0, 1.0);
        assert_eq!(q.best_action(1), 0);
    }

    #[test]
    fn pair_matches_scalar_reads() {
        let mut q = QTable::new(4);
        q.update_toward(2, 0, -3.0, 1.0);
        q.update_toward(2, 1, 8.0, 0.5);
        assert_eq!(q.pair(2), [q.q(2, 0), q.q(2, 1)]);
        assert_eq!(q.pair(0), [0.0, 0.0]);
    }

    #[test]
    fn quantized_clamps() {
        let mut q = QTable::new(2);
        q.update_toward(0, 0, 1000.0, 1.0);
        assert_eq!(q.quantized(0, 0), 255);
        q.update_toward(0, 1, -12.5, 1.0);
        assert_eq!(q.quantized(0, 1), 12);
    }

    #[test]
    fn bounded_q_values_under_bounded_rewards() {
        // With targets r + γ maxQ and |r| ≤ R, Q stays within R/(1-γ).
        let mut q = QTable::new(8);
        let (gamma, r_max) = (0.9f32, 30.0f32);
        let bound = r_max / (1.0 - gamma) + 1.0;
        let mut rng = cosmos_common::SplitMix64::new(4);
        for _ in 0..100_000 {
            let s = rng.next_index(8);
            let a = rng.next_index(2);
            let r = (rng.next_f64() as f32 - 0.5) * 2.0 * r_max;
            let target = r + gamma * q.max_q(rng.next_index(8));
            q.update_toward(s, a, target, 0.1);
        }
        for s in 0..8 {
            for a in 0..2 {
                assert!(q.q(s, a).abs() <= bound, "unbounded Q at ({s},{a})");
            }
        }
    }

    #[test]
    fn reset_zeroes() {
        let mut q = QTable::new(2);
        q.update_toward(0, 1, 5.0, 1.0);
        q.reset();
        assert_eq!(q.q(0, 1), 0.0);
    }
}
