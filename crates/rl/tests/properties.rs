//! Property-based tests for the RL substrate.

use cosmos_common::{LineAddr, PhysAddr};
use cosmos_rl::params::RlParams;
use cosmos_rl::quantized::QuantizedQTable;
use cosmos_rl::{Cet, CtrLocalityPredictor, DataLocation, DataLocationPredictor, Locality, QTable};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// Reference CET semantics: the pre-flattening map/tree implementation
/// (`HashMap` for membership + `BTreeMap<time, addr>` for recency). The
/// arena/open-addressing [`Cet`] must be observationally identical to it.
struct RefCet {
    capacity: usize,
    radius: u64,
    map: HashMap<u64, (usize, Locality, u64)>,
    lru: BTreeMap<u64, u64>,
    clock: u64,
    head: Option<(usize, Locality)>,
}

impl RefCet {
    fn new(capacity: usize, radius: u64) -> Self {
        Self {
            capacity,
            radius,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            head: None,
        }
    }

    fn check_nearby(&self, addr: u64) -> bool {
        if self.map.contains_key(&addr) {
            return true;
        }
        for d in 1..=self.radius {
            if self.map.contains_key(&addr.wrapping_add(d))
                || self.map.contains_key(&addr.wrapping_sub(d))
            {
                return true;
            }
        }
        false
    }

    fn insert(
        &mut self,
        addr: u64,
        state: usize,
        action: Locality,
    ) -> Option<(u64, usize, Locality)> {
        self.clock += 1;
        if let Some((_, _, old_time)) = self.map.insert(addr, (state, action, self.clock)) {
            self.lru.remove(&old_time);
        }
        self.lru.insert(self.clock, addr);
        self.head = Some((state, action));
        if self.map.len() > self.capacity {
            let (&t, &victim) = self.lru.iter().next().unwrap();
            self.lru.remove(&t);
            let (s, a, _) = self.map.remove(&victim).unwrap();
            return Some((victim, s, a));
        }
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn qtable_stays_bounded_under_bounded_rewards(
        updates in prop::collection::vec((0usize..64, 0usize..2, -30f32..30f32), 1..500)
    ) {
        let mut q = QTable::new(64);
        let gamma = 0.88f32;
        let bound = 30.0 / (1.0 - gamma) + 1.0;
        for &(s, a, r) in &updates {
            let target = r + gamma * q.max_q(s);
            q.update_toward(s, a, target, 0.09);
        }
        for s in 0..64 {
            for a in 0..2 {
                prop_assert!(q.q(s, a).abs() <= bound);
            }
        }
    }

    #[test]
    fn cet_never_exceeds_capacity_and_evictions_balance(
        inserts in prop::collection::vec(0u64..10_000, 1..300),
        cap in 1usize..64,
    ) {
        let mut cet = Cet::new(cap, 0);
        let mut evictions = 0usize;
        let mut unique = std::collections::HashSet::new();
        for &a in &inserts {
            unique.insert(a);
            if cet.insert(a, 0, Locality::Good).is_some() {
                evictions += 1;
            }
            prop_assert!(cet.len() <= cap);
        }
        // Every live entry is a distinct inserted address, and evictions
        // can never exceed the number of insertions.
        prop_assert!(cet.len() <= unique.len().min(cap));
        prop_assert!(evictions <= inserts.len());
        // Net balance: entries that went in either stayed or were evicted
        // (re-insertions of evicted addresses may repeat the cycle).
        prop_assert!(cet.len() + evictions >= unique.len().min(cap));
    }

    #[test]
    fn cet_nearby_respects_radius(center in 1_000u64..1_000_000, radius in 0u64..64, d in 0u64..128) {
        let mut cet = Cet::new(16, radius);
        cet.insert(center, 0, Locality::Bad);
        let probe = center + d;
        prop_assert_eq!(cet.check_nearby(probe), d <= radius);
    }

    #[test]
    fn data_predictor_converges_on_consistent_oracle(
        addrs in prop::collection::vec(0u64..32, 50..200),
    ) {
        // Oracle: even hashed-lines are on-chip, odd are off-chip — a
        // deterministic function of the address.
        let params = RlParams { epsilon: 0.0, ..RlParams::data_defaults() };
        let mut p = DataLocationPredictor::new(params, 9);
        let oracle = |a: u64| if a.is_multiple_of(2) { DataLocation::OnChip } else { DataLocation::OffChip };
        for _round in 0..30 {
            for &a in &addrs {
                let addr = PhysAddr::new(a * (1 << 20));
                let pred = p.predict(addr);
                p.learn(addr, pred, oracle(a));
            }
        }
        let mut correct = 0;
        for &a in &addrs {
            if p.greedy(PhysAddr::new(a * (1 << 20))) == oracle(a) {
                correct += 1;
            }
        }
        prop_assert!(correct * 10 >= addrs.len() * 9, "{correct}/{}", addrs.len());
    }

    #[test]
    fn locality_stats_are_consistent(ctrs in prop::collection::vec(0u64..64, 1..300)) {
        let mut p = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 32, 0, 7);
        for &c in &ctrs {
            p.classify(LineAddr::new((1 << 34) + c));
        }
        let s = p.stats();
        prop_assert_eq!(s.predictions, ctrs.len() as u64);
        prop_assert!(s.predicted_good <= s.predictions);
        prop_assert!(s.cet_hits <= s.predictions);
        prop_assert!(s.agreements <= s.predictions);
        prop_assert!(s.good_fraction() >= 0.0 && s.good_fraction() <= 1.0);
    }

    /// The flattened `Vec<f32>` Q-table performs bit-identical float ops to
    /// the nested `q[state][action]` layout it replaced.
    #[test]
    fn flat_qtable_matches_nested_reference(
        ops in prop::collection::vec((0usize..32, 0usize..2, -40f32..40f32, 0usize..32), 1..400)
    ) {
        let mut flat = QTable::new(32);
        let mut nested = vec![[0.0f32; 2]; 32];
        let (alpha, gamma) = (0.1f32, 0.9f32);
        for &(s, a, r, boot_s) in &ops {
            let ref_max = nested[boot_s][0].max(nested[boot_s][1]);
            prop_assert_eq!(flat.max_q(boot_s), ref_max);
            let target = r + gamma * ref_max;
            let returned = flat.update_toward(s, a, target, alpha);
            let q = &mut nested[s][a];
            *q += alpha * (target - *q);
            prop_assert_eq!(returned, *q);
        }
        for (s, row) in nested.iter().enumerate() {
            prop_assert_eq!(flat.pair(s), *row);
            let ref_best = usize::from(row[1] > row[0]);
            prop_assert_eq!(flat.best_action(s), ref_best);
            for (a, &rq) in row.iter().enumerate() {
                prop_assert_eq!(flat.q(s, a), rq);
                prop_assert_eq!(flat.quantized(s, a), rq.abs().clamp(0.0, 255.0) as u8);
            }
        }
    }

    /// The flattened `Vec<i8>` quantized table reproduces the nested
    /// shift-update (including the minimum-step and saturation rules).
    #[test]
    fn flat_quantized_qtable_matches_nested_reference(
        ops in prop::collection::vec((0usize..16, 0usize..2, -80f32..80f32), 1..400),
        shift in 0u32..7,
    ) {
        let mut flat = QuantizedQTable::new(16, shift);
        let mut nested = [[0i8; 2]; 16];
        for &(s, a, target) in &ops {
            flat.update(s, a, target);
            let t_fixed = (target * 4.0).clamp(i16::MIN as f32, i16::MAX as f32) as i16;
            let cur = nested[s][a] as i16;
            let mut delta = (t_fixed - cur) >> shift;
            if delta == 0 && t_fixed != cur {
                delta = (t_fixed - cur).signum();
            }
            nested[s][a] = (cur + delta).clamp(i8::MIN as i16, i8::MAX as i16) as i8;
        }
        for (s, row) in nested.iter().enumerate() {
            prop_assert_eq!(flat.pair(s), *row);
            let ref_best = usize::from(row[1] > row[0]);
            prop_assert_eq!(flat.best_action(s), ref_best);
            for (a, &rq) in row.iter().enumerate() {
                prop_assert_eq!(flat.q(s, a), rq as f32 / 4.0);
                prop_assert_eq!(flat.score(s, a), rq.unsigned_abs());
            }
        }
    }

    /// The arena/open-addressing CET is observationally identical to the
    /// map/tree reference over arbitrary insert + neighbourhood-check
    /// streams: same membership, same head, same eviction victims in the
    /// same order.
    #[test]
    fn cet_matches_map_tree_reference(
        ops in prop::collection::vec((0u64..200, 0usize..64, any::<bool>()), 1..600),
        cap in 1usize..48,
        radius in 0u64..8,
    ) {
        let mut cet = Cet::new(cap, radius);
        let mut reference = RefCet::new(cap, radius);
        for &(addr, state, good) in &ops {
            let action = if good { Locality::Good } else { Locality::Bad };
            prop_assert_eq!(cet.check_nearby(addr), reference.check_nearby(addr));
            let ev = cet.insert(addr, state, action);
            let ref_ev = reference.insert(addr, state, action);
            prop_assert_eq!(ev.map(|e| (e.addr, e.state, e.action)), ref_ev);
            prop_assert_eq!(cet.len(), reference.map.len());
            prop_assert_eq!(cet.head(), reference.head);
        }
        // Post-stream membership sweep over the full address range.
        for probe in 0..208u64 {
            prop_assert_eq!(cet.check_nearby(probe), reference.check_nearby(probe));
        }
    }
}
