//! Property-based tests for the RL substrate.

use cosmos_common::{LineAddr, PhysAddr};
use cosmos_rl::params::RlParams;
use cosmos_rl::{Cet, CtrLocalityPredictor, DataLocation, DataLocationPredictor, Locality, QTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn qtable_stays_bounded_under_bounded_rewards(
        updates in prop::collection::vec((0usize..64, 0usize..2, -30f32..30f32), 1..500)
    ) {
        let mut q = QTable::new(64);
        let gamma = 0.88f32;
        let bound = 30.0 / (1.0 - gamma) + 1.0;
        for &(s, a, r) in &updates {
            let target = r + gamma * q.max_q(s);
            q.update_toward(s, a, target, 0.09);
        }
        for s in 0..64 {
            for a in 0..2 {
                prop_assert!(q.q(s, a).abs() <= bound);
            }
        }
    }

    #[test]
    fn cet_never_exceeds_capacity_and_evictions_balance(
        inserts in prop::collection::vec(0u64..10_000, 1..300),
        cap in 1usize..64,
    ) {
        let mut cet = Cet::new(cap, 0);
        let mut evictions = 0usize;
        let mut unique = std::collections::HashSet::new();
        for &a in &inserts {
            unique.insert(a);
            if cet.insert(a, 0, Locality::Good).is_some() {
                evictions += 1;
            }
            prop_assert!(cet.len() <= cap);
        }
        // Every live entry is a distinct inserted address, and evictions
        // can never exceed the number of insertions.
        prop_assert!(cet.len() <= unique.len().min(cap));
        prop_assert!(evictions <= inserts.len());
        // Net balance: entries that went in either stayed or were evicted
        // (re-insertions of evicted addresses may repeat the cycle).
        prop_assert!(cet.len() + evictions >= unique.len().min(cap));
    }

    #[test]
    fn cet_nearby_respects_radius(center in 1_000u64..1_000_000, radius in 0u64..64, d in 0u64..128) {
        let mut cet = Cet::new(16, radius);
        cet.insert(center, 0, Locality::Bad);
        let probe = center + d;
        prop_assert_eq!(cet.check_nearby(probe), d <= radius);
    }

    #[test]
    fn data_predictor_converges_on_consistent_oracle(
        addrs in prop::collection::vec(0u64..32, 50..200),
    ) {
        // Oracle: even hashed-lines are on-chip, odd are off-chip — a
        // deterministic function of the address.
        let params = RlParams { epsilon: 0.0, ..RlParams::data_defaults() };
        let mut p = DataLocationPredictor::new(params, 9);
        let oracle = |a: u64| if a.is_multiple_of(2) { DataLocation::OnChip } else { DataLocation::OffChip };
        for _round in 0..30 {
            for &a in &addrs {
                let addr = PhysAddr::new(a * (1 << 20));
                let pred = p.predict(addr);
                p.learn(addr, pred, oracle(a));
            }
        }
        let mut correct = 0;
        for &a in &addrs {
            if p.greedy(PhysAddr::new(a * (1 << 20))) == oracle(a) {
                correct += 1;
            }
        }
        prop_assert!(correct * 10 >= addrs.len() * 9, "{correct}/{}", addrs.len());
    }

    #[test]
    fn locality_stats_are_consistent(ctrs in prop::collection::vec(0u64..64, 1..300)) {
        let mut p = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 32, 0, 7);
        for &c in &ctrs {
            p.classify(LineAddr::new((1 << 34) + c));
        }
        let s = p.stats();
        prop_assert_eq!(s.predictions, ctrs.len() as u64);
        prop_assert!(s.predicted_good <= s.predictions);
        prop_assert!(s.cet_hits <= s.predictions);
        prop_assert!(s.agreements <= s.predictions);
        prop_assert!(s.good_fraction() >= 0.0 && s.good_fraction() <= 1.0);
    }
}
