//! The epoch protocol: prime → victim burst → probe, repeated.
//!
//! One *cell* of the occupancy sweep is a single simulation in which an
//! attacker tenant and a victim tenant alternate phases:
//!
//! 1. **Prime**: the attacker reads `probe_lines` distinct counter blocks,
//!    filling the CTR cache with attacker-owned counter lines.
//! 2. **Victim burst**: the victim runs — either a synthetic occupancy
//!    generator touching a controlled number of counter blocks (the sweep
//!    variable) or a slice of a real workload trace.
//! 3. **Probe**: the attacker re-reads *the same counter blocks* it primed
//!    and observes how many now miss (and how many cycles those misses
//!    cost) — the per-epoch channel observation.
//!
//! Two addressing details make the instrument clean:
//!
//! - Prime and probe touch the same counter block through *different data
//!   lines* (slot 0 vs slot 1 of the block's `coverage`-line span), so the
//!   probe always misses the data caches and the measurement isolates the
//!   CTR cache.
//! - Each epoch uses a *fresh* range of counter blocks, so no phase ever
//!   hits leftover data-cache or CTR state from a previous epoch; the
//!   probe's hits and misses are determined purely by what survived this
//!   epoch's victim burst.
//!
//! Observations are read from the simulator's per-tenant CTR stat buckets
//! ([`cosmos_core::stats::TenantCtrStats`]) — the same attribution the
//! flight recorder and telemetry heatmaps use.

use crate::leakage::EpochObservation;
use cosmos_common::{MemAccess, PhysAddr, Trace};
use cosmos_core::{SimConfig, SimStats, Simulator};
use cosmos_verify::{check_monotonic, check_stats, ShadowHook, ShadowState, Violation};
use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

/// Geometry and schedule of one channel cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Counter blocks primed and probed per epoch. Set to the CTR cache's
    /// line capacity for a self-evicting full-occupancy probe.
    pub probe_lines: usize,
    /// Leading epochs discarded from the observation vector (cache and
    /// predictor warm-up).
    pub warmup_epochs: usize,
    /// Measured epochs.
    pub epochs: usize,
    /// Tenant id carried by attacker accesses (victim accesses carry 0).
    pub attacker_tenant: u8,
    /// First data-line index of the attacker's probe region.
    pub attacker_base_line: u64,
    /// First data-line index of the synthetic victim's region.
    pub victim_base_line: u64,
}

impl ChannelSpec {
    /// A spec probing `probe_lines` counter blocks with the default
    /// regions (attacker at data line 2^26, victim at 2^27 — far above the
    /// workload generators' footprints, far below the 32 GB line count).
    pub const fn new(probe_lines: usize, epochs: usize) -> Self {
        Self {
            probe_lines,
            warmup_epochs: 2,
            epochs,
            attacker_tenant: 1,
            attacker_base_line: 1 << 26,
            victim_base_line: 1 << 27,
        }
    }
}

/// What runs in the victim phase of every epoch.
#[derive(Clone, Copy, Debug)]
pub enum Victim<'a> {
    /// Synthetic occupancy: touch `lines` fresh counter blocks per epoch —
    /// the controlled sweep variable. `lines == 0` is the idle victim.
    Occupancy { lines: usize },
    /// A real workload: `burst` accesses per epoch, taken from `trace` in
    /// order and cycled when exhausted.
    Workload { trace: &'a Trace, burst: usize },
}

/// A fully materialized cell input: the tenant-tagged access sequence plus
/// the index ranges of every measured probe phase.
#[derive(Clone, Debug)]
pub struct EpochTrace {
    /// The composed access sequence.
    pub trace: Trace,
    /// Index ranges (into `trace`) of the measured epochs' probe phases,
    /// warmup excluded.
    pub probe_windows: Vec<Range<usize>>,
}

/// Builds the epoch-protocol trace for one cell. `coverage` is the counter
/// scheme's data-lines-per-counter-block (`config.scheme.coverage()`);
/// deterministic — the builder draws no randomness at all.
///
/// # Panics
///
/// Panics if `probe_lines` or `epochs` is zero, or if a workload victim's
/// trace is empty with a non-zero burst.
pub fn build_epoch_trace(spec: &ChannelSpec, victim: Victim<'_>, coverage: u64) -> EpochTrace {
    assert!(spec.probe_lines > 0, "probe must touch at least one block");
    assert!(spec.epochs > 0, "need at least one measured epoch");
    let total_epochs = spec.warmup_epochs + spec.epochs;
    let victim_len = match victim {
        Victim::Occupancy { lines } => lines,
        Victim::Workload { trace, burst } => {
            assert!(
                burst == 0 || !trace.is_empty(),
                "workload victim needs a non-empty trace"
            );
            burst
        }
    };
    let epoch_len = 2 * spec.probe_lines + victim_len;
    let mut out = Trace::with_capacity(epoch_len * total_epochs);
    let mut probe_windows = Vec::with_capacity(spec.epochs);
    let mut victim_cursor = 0usize; // block index or trace index
    for epoch in 0..total_epochs {
        // Fresh counter blocks for this epoch's prime+probe pair.
        let first_block = epoch as u64 * spec.probe_lines as u64;
        let prime_line = |i: u64| spec.attacker_base_line + (first_block + i) * coverage;
        for i in 0..spec.probe_lines as u64 {
            out.push(
                MemAccess::read(0, PhysAddr::new(prime_line(i) * 64), 1)
                    .with_tenant(spec.attacker_tenant),
            );
        }
        match victim {
            Victim::Occupancy { lines } => {
                for _ in 0..lines {
                    let line = spec.victim_base_line + victim_cursor as u64 * coverage;
                    out.push(MemAccess::read(1, PhysAddr::new(line * 64), 1));
                    victim_cursor += 1;
                }
            }
            Victim::Workload { trace, burst } => {
                let slice = trace.as_slice();
                for _ in 0..burst {
                    out.push(slice[victim_cursor % slice.len()].with_tenant(0));
                    victim_cursor += 1;
                }
            }
        }
        let probe_start = out.len();
        // Probe: same blocks, next data slot — a guaranteed data-cache
        // miss that still lands on the primed counter line.
        for i in 0..spec.probe_lines as u64 {
            out.push(
                MemAccess::read(0, PhysAddr::new((prime_line(i) + 1) * 64), 1)
                    .with_tenant(spec.attacker_tenant),
            );
        }
        if epoch >= spec.warmup_epochs {
            probe_windows.push(probe_start..out.len());
        }
    }
    EpochTrace {
        trace: out,
        probe_windows,
    }
}

/// Everything one cell run produces.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// One observation per measured epoch.
    pub observations: Vec<EpochObservation>,
    /// The cell simulation's final statistics.
    pub stats: SimStats,
    /// Oracle violations found when `check` was set (0 otherwise).
    pub check_violations: u64,
}

/// Runs one cell: steps `et.trace` through a fresh simulator under
/// `config`, reading the attacker's per-tenant CTR stat bucket before and
/// after every measured probe window. With `check`, the `cosmos-verify`
/// shadow models observe the run in lockstep and the conservation-law
/// catalogue runs at every probe boundary; violations are counted in the
/// result and summarized on stderr. Observations are byte-identical either
/// way — the oracles observe, never perturb.
///
/// # Panics
///
/// Panics if `config.design` has no secure path (no CTR cache — nothing to
/// probe).
pub fn run_cell(config: &SimConfig, et: &EpochTrace, check: bool) -> CellResult {
    assert!(
        config.design.is_secure(),
        "occupancy channel needs a CTR cache; {} has none",
        config.design
    );
    let mut sim = Simulator::new(config.clone());
    let shadow = if check {
        let state = ShadowState::new(config).map(|s| Rc::new(RefCell::new(s)));
        if let Some(state) = &state {
            sim.set_secure_observer(Box::new(ShadowHook::new(Rc::clone(state))));
        }
        state
    } else {
        None
    };
    // The attacker's stat bucket: first non-zero tenant tag in the trace,
    // folded the same way SecurePath folds it.
    let att = usize::from(
        et.trace
            .iter()
            .map(|a| a.tenant)
            .find(|&t| t != 0)
            .unwrap_or(1),
    ) % cosmos_core::stats::MAX_TENANTS;

    let mut observations = Vec::with_capacity(et.probe_windows.len());
    let mut windows = et.probe_windows.iter();
    let mut current = windows.next();
    let mut before = cosmos_core::stats::TenantCtrStats::default();
    let mut boundary_violations: Vec<Violation> = Vec::new();
    let mut prev_snap: Option<SimStats> = None;
    for (i, access) in et.trace.iter().enumerate() {
        if let Some(w) = current {
            if i == w.start {
                before = sim.secure().expect("secure design").tenant_stats()[att];
            }
        }
        sim.step(access);
        if let Some(w) = current {
            if i + 1 == w.end {
                let after = sim.secure().expect("secure design").tenant_stats()[att];
                let delta = after.since(&before);
                observations.push(EpochObservation {
                    probe_hits: delta.hits,
                    probe_misses: delta.misses,
                    probe_miss_latency: delta.miss_latency,
                });
                if check {
                    let snap = sim.snapshot();
                    boundary_violations.extend(check_stats(&snap, config));
                    if let Some(prev) = &prev_snap {
                        boundary_violations.extend(check_monotonic(prev, &snap));
                    }
                    prev_snap = Some(snap);
                }
                current = windows.next();
            }
        }
    }

    let mut check_violations = boundary_violations.len() as u64;
    if let Some(state) = shadow {
        {
            let mut s = state.borrow_mut();
            if let Some(sp) = sim.secure() {
                s.final_checks(sp);
            }
        }
        let s = state.borrow();
        check_violations += s.total_violations();
        for v in s.violations().iter().take(8) {
            eprintln!("channel-check: {v}");
        }
    }
    for v in boundary_violations.iter().take(8) {
        eprintln!("channel-check: {v}");
    }
    CellResult {
        observations,
        stats: sim.finalize(),
        check_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_core::config::CtrIndex;
    use cosmos_core::Design;

    fn tiny_config(design: Design) -> SimConfig {
        let mut c = SimConfig::paper_default(design);
        c.ctr_cache.size_bytes = 8 * 1024; // 128 counter lines
        c.mt_cache.size_bytes = 8 * 1024;
        c
    }

    #[test]
    fn epoch_trace_has_expected_shape() {
        let spec = ChannelSpec::new(16, 3);
        let cov = 128;
        let et = build_epoch_trace(&spec, Victim::Occupancy { lines: 8 }, cov);
        // (2 warmup + 3 measured) epochs × (16 prime + 8 victim + 16 probe).
        assert_eq!(et.trace.len(), 5 * 40);
        assert_eq!(et.probe_windows.len(), 3);
        for w in &et.probe_windows {
            assert_eq!(w.len(), 16);
            for a in &et.trace.as_slice()[w.clone()] {
                assert_eq!(a.tenant, 1, "probe window holds attacker accesses");
            }
        }
        // Prime and probe of one epoch share counter blocks but not lines.
        let prime0 = et.trace.as_slice()[0].addr.value() / 64;
        let probe0 = et.trace.as_slice()[24].addr.value() / 64;
        assert_eq!(probe0, prime0 + 1, "probe uses the next data slot");
    }

    #[test]
    fn epochs_never_reuse_counter_blocks() {
        let spec = ChannelSpec::new(8, 4);
        let cov = 128;
        let et = build_epoch_trace(&spec, Victim::Occupancy { lines: 4 }, cov);
        let mut blocks: Vec<u64> = et
            .trace
            .iter()
            .filter(|a| a.tenant == 1)
            .map(|a| (a.addr.value() / 64) / cov)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        // 6 epochs × 8 blocks, each appearing for prime and probe only.
        assert_eq!(blocks.len(), 6 * 8);
    }

    #[test]
    fn victim_occupancy_raises_probe_misses_under_lru() {
        let config = tiny_config(Design::MorphCtr);
        let cov = config.scheme.coverage();
        let spec = ChannelSpec::new(128, 12);
        let idle = build_epoch_trace(&spec, Victim::Occupancy { lines: 0 }, cov);
        let busy = build_epoch_trace(&spec, Victim::Occupancy { lines: 96 }, cov);
        let idle_r = run_cell(&config, &idle, false);
        let busy_r = run_cell(&config, &busy, false);
        let mean = |r: &CellResult| {
            r.observations.iter().map(|o| o.probe_misses).sum::<u64>() as f64
                / r.observations.len() as f64
        };
        assert!(
            mean(&busy_r) > mean(&idle_r) + 8.0,
            "victim occupancy invisible: idle {} vs busy {}",
            mean(&idle_r),
            mean(&busy_r)
        );
    }

    #[test]
    fn cell_is_deterministic_and_check_does_not_perturb() {
        let mut config = tiny_config(Design::MorphCtr);
        config.ctr_index = CtrIndex::Random;
        let cov = config.scheme.coverage();
        let spec = ChannelSpec::new(64, 6);
        let et = build_epoch_trace(&spec, Victim::Occupancy { lines: 32 }, cov);
        let a = run_cell(&config, &et, false);
        let b = run_cell(&config, &et, false);
        assert_eq!(a, b, "cell must be deterministic");
        let checked = run_cell(&config, &et, true);
        assert_eq!(
            checked.check_violations, 0,
            "oracles must pass on a randomized-index cell"
        );
        assert_eq!(checked.observations, a.observations);
        assert_eq!(checked.stats, a.stats);
    }

    #[test]
    fn workload_victim_cycles_and_tags_tenant_zero() {
        let victim: Trace = (0..10)
            .map(|i| MemAccess::read(2, PhysAddr::new(i * 64), 1))
            .collect();
        let spec = ChannelSpec::new(4, 2);
        let et = build_epoch_trace(
            &spec,
            Victim::Workload {
                trace: &victim,
                burst: 16,
            },
            128,
        );
        let bursts: Vec<_> = et.trace.iter().filter(|a| a.tenant == 0).collect();
        assert_eq!(bursts.len(), 4 * 16, "4 epochs × 16-access bursts");
        assert_eq!(bursts[0].addr, bursts[10].addr, "trace cycles past its end");
    }
}
