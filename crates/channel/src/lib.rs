//! Multi-tenant CTR-cache occupancy-channel measurement harness.
//!
//! The shared counter cache of a secure-memory controller is a classic
//! occupancy side channel: a co-resident attacker primes the cache,
//! waits, probes, and reads the victim's metadata working-set size out
//! of its own miss count. This crate turns that attack into a
//! *measurement instrument* for the COSMOS reproduction:
//!
//! - [`epoch`] builds deterministic prime → victim-burst → probe traces
//!   ([`build_epoch_trace`]) and runs them through the simulator,
//!   reading the attacker's per-tenant CTR stat bucket around every
//!   probe window ([`run_cell`]);
//! - [`leakage`] reduces per-epoch observations to a [`LeakageReport`]:
//!   per-level histograms, a pairwise total-variation
//!   distinguishability score, and a mutual-information channel
//!   capacity in bits per epoch;
//! - [`run_sweep`] drives one design/index cell across a whole victim
//!   occupancy sweep.
//!
//! The interesting comparisons (`channel_occupancy` figure, DESIGN.md
//! §16) hold the design fixed and vary the CTR index function: modulo
//! indexing under LRU leaks the most, keyed-randomized and
//! skewed-associative indexing attenuate the channel, and COSMOS's LCR
//! replacement changes its shape.

pub mod epoch;
pub mod leakage;

pub use epoch::{build_epoch_trace, run_cell, CellResult, ChannelSpec, EpochTrace, Victim};
pub use leakage::{
    bin_levels, capacity_bits, distinguishability, reduce, total_variation, EpochObservation,
    Histogram, LeakageReport, LevelSummary, DEFAULT_BINS,
};

use cosmos_core::SimConfig;

/// One occupancy level's raw output within a sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// Victim occupancy: counter blocks touched per epoch.
    pub level: usize,
    /// Per-epoch attacker observations (warmup excluded).
    pub observations: Vec<EpochObservation>,
    /// Oracle violations found when checking was requested.
    pub check_violations: u64,
}

/// Runs one design/index cell over `levels` victim occupancy levels and
/// reduces the observations to a leakage report. Each level is a fresh
/// simulation of the same [`ChannelSpec`] schedule with a synthetic
/// [`Victim::Occupancy`] of that size.
pub fn run_sweep(
    config: &SimConfig,
    spec: &ChannelSpec,
    levels: &[usize],
    check: bool,
) -> (Vec<SweepCell>, LeakageReport) {
    let coverage = config.scheme.coverage();
    let cells: Vec<SweepCell> = levels
        .iter()
        .map(|&level| {
            let et = build_epoch_trace(spec, Victim::Occupancy { lines: level }, coverage);
            let r = run_cell(config, &et, check);
            SweepCell {
                level,
                observations: r.observations,
                check_violations: r.check_violations,
            }
        })
        .collect();
    let per_level: Vec<(usize, Vec<EpochObservation>)> = cells
        .iter()
        .map(|c| (c.level, c.observations.clone()))
        .collect();
    let report = reduce(&per_level, DEFAULT_BINS);
    (cells, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_core::config::CtrIndex;
    use cosmos_core::Design;

    /// The small instrument used by tests: an 8 KB CTR cache (128 lines,
    /// 16 sets × 8 ways) so full-occupancy probes stay cheap.
    fn instrument(design: Design, index: CtrIndex) -> SimConfig {
        let mut c = SimConfig::paper_default(design);
        c.ctr_cache.size_bytes = 8 * 1024;
        c.mt_cache.size_bytes = 8 * 1024;
        c.ctr_index = index;
        c
    }

    /// Fixed-seed leakage regression: under modulo indexing + LRU the
    /// occupancy levels must be clearly distinguishable, and keyed
    /// randomization must measurably reduce that distinguishability.
    /// Guards both the instrument (a broken probe shows no signal
    /// anywhere) and the defense (a broken keyed index leaks like
    /// modulo).
    ///
    /// Levels stay below the instrument's 16 sets: under modulo every
    /// victim line cascades one whole set (8 probe misses), so the
    /// staircase saturates once all sets are hit and levels above that
    /// become indistinguishable *under modulo too*. Sub-saturation is
    /// where the defenses have to prove themselves.
    #[test]
    fn randomized_index_reduces_distinguishability() {
        let spec = ChannelSpec::new(128, 10);
        let levels = [0usize, 4, 12];
        let (_, lru) = run_sweep(
            &instrument(Design::MorphCtr, CtrIndex::Modulo),
            &spec,
            &levels,
            false,
        );
        let (_, random) = run_sweep(
            &instrument(Design::MorphCtr, CtrIndex::Random),
            &spec,
            &levels,
            false,
        );
        assert!(
            lru.distinguishability > 0.9,
            "modulo+LRU channel should be clearly visible, got {}",
            lru.distinguishability
        );
        assert!(
            lru.distinguishability > random.distinguishability + 0.05,
            "randomized indexing must reduce distinguishability: lru {} vs random {}",
            lru.distinguishability,
            random.distinguishability
        );
        assert!(
            lru.capacity_bits > 0.0,
            "a visible channel carries information"
        );
    }

    #[test]
    fn sweep_reports_levels_in_order_and_checks_cleanly() {
        let spec = ChannelSpec::new(32, 4);
        let levels = [0usize, 16];
        let config = instrument(Design::MorphCtr, CtrIndex::Skewed);
        let (cells, report) = run_sweep(&config, &spec, &levels, true);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].level, 0);
        assert_eq!(cells[1].level, 16);
        assert_eq!(cells.iter().map(|c| c.check_violations).sum::<u64>(), 0);
        assert_eq!(report.levels.len(), 2);
        for c in &cells {
            assert_eq!(c.observations.len(), spec.epochs);
        }
    }
}
