//! Reducing per-epoch observations to a leakage report.
//!
//! The driver hands this module one observation vector per victim
//! occupancy level. The reduction is three estimators over the
//! per-epoch probe-miss counts:
//!
//! - a **histogram** per level (shared integer binning across levels, so
//!   the same miss count always lands in the same bin no matter which
//!   level produced it);
//! - **distinguishability**: the mean pairwise total-variation distance
//!   between level histograms — 0 when every occupancy level looks the
//!   same to the attacker, 1 when every pair is perfectly separable;
//! - **channel capacity**: the mutual information `I(L; O)` in bits per
//!   epoch between the victim's occupancy level `L` (uniform prior) and
//!   the binned observation `O` — an upper bound on what one epoch of
//!   probing reveals, `log2(levels)` at most.
//!
//! Everything here is deterministic: binning is pure integer arithmetic
//! and the floating-point accumulations run in a fixed order, so reports
//! are byte-identical across runs and across `--jobs` fan-outs.

use cosmos_common::json::{json, Value};

/// Default number of histogram bins.
pub const DEFAULT_BINS: usize = 16;

/// What the attacker sees in one measured epoch's probe phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochObservation {
    /// Probe-window CTR-cache hits attributed to the attacker.
    pub probe_hits: u64,
    /// Probe-window CTR-cache misses attributed to the attacker — the
    /// primary channel observable.
    pub probe_misses: u64,
    /// Summed critical-path cycles of the probe's read misses — the
    /// timing form of the same observable.
    pub probe_miss_latency: u64,
}

/// An integer-binned histogram over probe-miss counts.
///
/// All histograms of one report share `lo` and `width`, fixed from the
/// global observation range, so bins are comparable across levels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Smallest value of bin 0.
    pub lo: u64,
    /// Values per bin (`>= 1`).
    pub width: u64,
    /// Occupancy count per bin.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// The bin index of `value` under this histogram's binning.
    pub fn bin_of(&self, value: u64) -> usize {
        (value.saturating_sub(self.lo) / self.width).min(self.counts.len() as u64 - 1) as usize
    }

    /// Total observations binned.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The histogram as a probability distribution.
    pub fn probs(&self) -> Vec<f64> {
        let n = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    fn to_json(&self) -> Value {
        json!({
            "lo": (self.lo),
            "width": (self.width),
            "counts": (self.counts.clone()),
        })
    }
}

/// Bins one value series per level under a shared binning derived from
/// the global min/max of all series. Returns one histogram per series,
/// in order.
pub fn bin_levels(series: &[Vec<u64>], bins: usize) -> Vec<Histogram> {
    assert!(bins > 0, "need at least one bin");
    let lo = series.iter().flatten().copied().min().unwrap_or(0);
    let hi = series.iter().flatten().copied().max().unwrap_or(0);
    let width = (hi - lo + 1).div_ceil(bins as u64).max(1);
    series
        .iter()
        .map(|vals| {
            let mut h = Histogram {
                lo,
                width,
                counts: vec![0; bins],
            };
            for &v in vals {
                let b = h.bin_of(v);
                h.counts[b] += 1;
            }
            h
        })
        .collect()
}

/// Total-variation distance `0.5 * Σ|p_i - q_i|` between two histograms
/// sharing a binning. 0 = identical distributions, 1 = disjoint support.
pub fn total_variation(a: &Histogram, b: &Histogram) -> f64 {
    debug_assert_eq!(a.lo, b.lo);
    debug_assert_eq!(a.width, b.width);
    let (pa, pb) = (a.probs(), b.probs());
    0.5 * pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Mean pairwise total-variation distance over all level pairs — the
/// report's distinguishability score. 0 for fewer than two levels.
pub fn distinguishability(histograms: &[Histogram]) -> f64 {
    let n = histograms.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += total_variation(&histograms[i], &histograms[j]);
        }
    }
    sum / (n * (n - 1) / 2) as f64
}

/// Mutual information `I(L; O)` in bits between the (uniform-prior)
/// level variable and the binned observation:
/// `I = (1/L) Σ_l Σ_b p(b|l) log2(p(b|l) / p̄(b))`.
///
/// This is the channel capacity of one epoch under a uniform input
/// distribution; it is bounded by `log2(levels)`.
pub fn capacity_bits(histograms: &[Histogram]) -> f64 {
    let levels = histograms.len();
    if levels < 2 {
        return 0.0;
    }
    let per_level: Vec<Vec<f64>> = histograms.iter().map(Histogram::probs).collect();
    let bins = per_level[0].len();
    let marginal: Vec<f64> = (0..bins)
        .map(|b| per_level.iter().map(|p| p[b]).sum::<f64>() / levels as f64)
        .collect();
    let mut info = 0.0;
    for p in &per_level {
        for (b, &pb) in p.iter().enumerate() {
            if pb > 0.0 && marginal[b] > 0.0 {
                info += pb * (pb / marginal[b]).log2();
            }
        }
    }
    (info / levels as f64).max(0.0)
}

/// One occupancy level's reduced view.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelSummary {
    /// Victim occupancy (counter blocks touched per epoch).
    pub level: usize,
    /// Mean probe misses per measured epoch.
    pub mean_misses: f64,
    /// Mean summed probe miss latency per measured epoch.
    pub mean_miss_latency: f64,
    /// The level's probe-miss histogram (shared binning).
    pub histogram: Histogram,
}

/// The leakage report of one design/index cell: per-level histograms plus
/// the two scalar channel metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakageReport {
    /// One summary per swept occupancy level, in sweep order.
    pub levels: Vec<LevelSummary>,
    /// Mean pairwise total-variation distance between level histograms.
    pub distinguishability: f64,
    /// Uniform-prior mutual information in bits per epoch.
    pub capacity_bits: f64,
}

impl LeakageReport {
    /// The report as a JSON object (deterministic field order).
    pub fn to_json(&self) -> Value {
        json!({
            "levels": (self
                .levels
                .iter()
                .map(|l| {
                    json!({
                        "level": (l.level),
                        "mean_misses": (l.mean_misses),
                        "mean_miss_latency": (l.mean_miss_latency),
                        "histogram": (l.histogram.to_json()),
                    })
                })
                .collect::<Vec<_>>()),
            "distinguishability": (self.distinguishability),
            "capacity_bits": (self.capacity_bits),
        })
    }
}

/// Reduces per-level observation vectors to a [`LeakageReport`].
///
/// # Panics
///
/// Panics if `bins == 0` or any level has no observations.
pub fn reduce(levels: &[(usize, Vec<EpochObservation>)], bins: usize) -> LeakageReport {
    for (level, obs) in levels {
        assert!(!obs.is_empty(), "level {level} has no observations");
    }
    let series: Vec<Vec<u64>> = levels
        .iter()
        .map(|(_, obs)| obs.iter().map(|o| o.probe_misses).collect())
        .collect();
    let histograms = bin_levels(&series, bins);
    let dist = distinguishability(&histograms);
    let cap = capacity_bits(&histograms);
    let summaries = levels
        .iter()
        .zip(histograms)
        .map(|((level, obs), histogram)| {
            let n = obs.len() as f64;
            LevelSummary {
                level: *level,
                mean_misses: obs.iter().map(|o| o.probe_misses).sum::<u64>() as f64 / n,
                mean_miss_latency: obs.iter().map(|o| o.probe_miss_latency).sum::<u64>() as f64 / n,
                histogram,
            }
        })
        .collect();
    LeakageReport {
        levels: summaries,
        distinguishability: dist,
        capacity_bits: cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(misses: u64) -> EpochObservation {
        EpochObservation {
            probe_hits: 0,
            probe_misses: misses,
            probe_miss_latency: misses * 100,
        }
    }

    #[test]
    fn shared_binning_spans_global_range() {
        let h = bin_levels(&[vec![0, 1, 2], vec![60, 63]], 16);
        assert_eq!(h[0].lo, 0);
        assert_eq!(h[0].width, 4); // ceil(64 / 16)
        assert_eq!(h[0].counts.iter().sum::<u64>(), 3);
        assert_eq!(h[1].counts[15], 2, "60 and 63 share the top bin");
    }

    #[test]
    fn degenerate_range_uses_one_bin() {
        let h = bin_levels(&[vec![5, 5, 5]], 16);
        assert_eq!(h[0].width, 1);
        assert_eq!(h[0].counts[0], 3);
    }

    #[test]
    fn total_variation_bounds() {
        let h = bin_levels(&[vec![0, 0, 0], vec![0, 0, 0], vec![63, 63]], 16);
        assert_eq!(total_variation(&h[0], &h[1]), 0.0);
        assert_eq!(total_variation(&h[0], &h[2]), 1.0);
    }

    #[test]
    fn capacity_of_separable_levels_is_log2() {
        // Two perfectly separable levels → exactly 1 bit per epoch.
        let h = bin_levels(&[vec![0; 8], vec![63; 8]], 16);
        assert!((capacity_bits(&h) - 1.0).abs() < 1e-12);
        // Identical levels → 0 bits.
        let h = bin_levels(&[vec![7; 8], vec![7; 8]], 16);
        assert_eq!(capacity_bits(&h), 0.0);
    }

    #[test]
    fn capacity_is_bounded_by_log2_levels() {
        let h = bin_levels(
            &[vec![0, 1, 2, 3], vec![1, 2, 3, 4], vec![30, 31, 32, 33]],
            16,
        );
        let cap = capacity_bits(&h);
        assert!(cap > 0.0 && cap <= (3f64).log2() + 1e-12, "cap = {cap}");
    }

    #[test]
    fn reduce_summarizes_levels_in_order() {
        let report = reduce(
            &[
                (0, vec![obs(1), obs(3)]),
                (32, vec![obs(40), obs(42)]),
                (64, vec![obs(60), obs(62)]),
            ],
            DEFAULT_BINS,
        );
        assert_eq!(report.levels.len(), 3);
        assert_eq!(report.levels[0].level, 0);
        assert_eq!(report.levels[1].mean_misses, 41.0);
        assert_eq!(report.levels[1].mean_miss_latency, 4100.0);
        assert!(report.distinguishability > 0.6);
        assert!(report.capacity_bits > 1.0);
        // Deterministic: same inputs, byte-identical JSON.
        let again = reduce(
            &[
                (0, vec![obs(1), obs(3)]),
                (32, vec![obs(40), obs(42)]),
                (64, vec![obs(60), obs(62)]),
            ],
            DEFAULT_BINS,
        );
        assert_eq!(report.to_json().to_string(), again.to_json().to_string());
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn reduce_rejects_empty_level() {
        reduce(&[(0, vec![])], DEFAULT_BINS);
    }
}
