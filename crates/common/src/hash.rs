//! Address hashing for RL state construction (paper §4.1.1).
//!
//! The COSMOS predictors hash bits 6–47 of the physical address (the
//! line-granular page-and-offset region) through a splitmix64 variant with
//! prime multipliers to form a compact, uniformly distributed state index
//! into a Q-table with a power-of-two number of states.

use crate::addr::PhysAddr;

/// splitmix64 finalizer (Vigna, 2017): a strong 64-bit mixing function.
///
/// # Examples
///
/// ```
/// use cosmos_common::hash::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// ```
#[inline]
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a physical address into an RL state index in `0..num_states`.
///
/// Uses bits 6..=47 of the address, as in the paper: the low 6 bits are the
/// line offset (irrelevant to locality), and 48 bits cover a 256 TiB physical
/// space.
///
/// # Panics
///
/// Panics if `num_states` is not a power of two (the hardware Q-table is
/// always a power-of-two SRAM; masking assumes it).
///
/// # Examples
///
/// ```
/// use cosmos_common::{hash::hash_address, PhysAddr};
/// let s = hash_address(PhysAddr::new(0xdead_beef), 16384);
/// assert!(s < 16384);
/// ```
#[inline]
pub fn hash_address(addr: PhysAddr, num_states: usize) -> usize {
    assert!(
        num_states.is_power_of_two(),
        "num_states must be a power of two, got {num_states}"
    );
    let significant = (addr.value() >> 6) & ((1u64 << 42) - 1);
    (splitmix64(significant) as usize) & (num_states - 1)
}

/// Hashes an arbitrary 64-bit key into `0..num_states` (power of two).
///
/// Used where the state key is already line-granular (e.g. counter-block
/// addresses).
///
/// # Panics
///
/// Panics if `num_states` is not a power of two.
#[inline]
pub fn hash_key(key: u64, num_states: usize) -> usize {
    assert!(
        num_states.is_power_of_two(),
        "num_states must be a power of two, got {num_states}"
    );
    (splitmix64(key) as usize) & (num_states - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_sequence_is_stable() {
        // Reference values computed from the canonical splitmix64 algorithm.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF_u64);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1_u64);
    }

    #[test]
    fn hash_address_in_range() {
        for n in [2usize, 64, 16384] {
            for a in [0u64, 63, 64, 0xFFFF_FFFF, u64::MAX] {
                assert!(hash_address(PhysAddr::new(a), n) < n);
            }
        }
    }

    #[test]
    fn line_offset_bits_are_ignored() {
        let a = PhysAddr::new(0x12_3456_7000);
        for off in 0..64u64 {
            assert_eq!(
                hash_address(a, 16384),
                hash_address(a.offset(off), 16384),
                "offset {off} changed the state"
            );
        }
    }

    #[test]
    fn different_lines_usually_differ() {
        let n = 16384;
        let base = PhysAddr::new(0x4000_0000);
        let mut collisions = 0;
        for i in 1..1000u64 {
            if hash_address(base, n) == hash_address(base.offset(i * 64), n) {
                collisions += 1;
            }
        }
        // 1000 draws over 16384 buckets: expect < a handful of collisions.
        assert!(collisions < 10, "too many collisions: {collisions}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let n = 64usize;
        let mut buckets = vec![0u32; n];
        for i in 0..64_000u64 {
            buckets[hash_address(PhysAddr::new(i * 64), n)] += 1;
        }
        let expected = 1000.0;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as f64 - expected).abs() / expected;
            assert!(dev < 0.25, "bucket {i} deviates {dev:.2} from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        hash_address(PhysAddr::new(0), 1000);
    }
}
