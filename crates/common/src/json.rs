//! A minimal JSON document model and serializer.
//!
//! The experiment harnesses emit machine-readable results; this module
//! replaces the `serde`/`serde_json` dependency with a self-contained
//! equivalent so the workspace builds with **zero registry dependencies**
//! (the build environment has no network access to crates.io).
//!
//! Supported surface — deliberately only what the workspace uses:
//!
//! - [`Value`]: null / bool / integer / float / string / array / object,
//! - [`Map`]: an insertion-ordered string→[`Value`] map,
//! - [`json!`](crate::json!): a literal macro accepting arbitrary Rust
//!   expressions in value position,
//! - [`Value::to_string`](core::fmt::Display) (compact) and
//!   [`Value::pretty`] (2-space indent, `serde_json`-style),
//! - [`parse`]: the inverse — a strict parser whose output round-trips
//!   the serializer exactly (snapshot restore depends on this).
//!
//! # Examples
//!
//! ```
//! use cosmos_common::json::{json, Value};
//! let v = json!({"name": "dfs", "ipc": 0.25, "rows": [1, 2, 3]});
//! assert_eq!(v["name"].as_str(), Some("dfs"));
//! assert_eq!(v["rows"][2].as_u64(), Some(3));
//! assert!(v.pretty().contains("\"ipc\": 0.25"));
//! ```

pub use crate::json;

/// An insertion-ordered JSON object.
///
/// Iteration and serialization follow insertion order, which keeps emitted
/// documents deterministic and in the order the harness built them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub const fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Inserts `value` under `key`, replacing (in place) any existing entry.
    /// Returns the previous value, if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(core::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key for mutation.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl core::ops::Index<&str> for Map {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
            // cosmos-lint: allow(P2): std Index contract requires a panic on a missing key
            .unwrap_or_else(|| panic!("no key {key:?} in JSON object"))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON document node.
///
/// Equality is *numeric* across the integer variants: `Int(5)` equals
/// `UInt(5)` (JSON itself has a single number type; the split exists only
/// so `u64` counters serialize without loss). Floats never equal integers.
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64` counters round-trip).
    UInt(u64),
    /// A double. Non-finite values serialize as `null` (JSON has no NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integer variants).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serializes with 2-space indentation (like `to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) if f.is_finite() => {
                // `{:?}` keeps a trailing `.0` on whole floats, matching the
                // conventional JSON rendering of a float-typed field.
                out.push_str(&format!("{f:?}"));
            }
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            (Value::Int(a), Value::UInt(b)) | (Value::UInt(b), Value::Int(a)) => {
                u64::try_from(*a) == Ok(*b)
            }
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl core::fmt::Display for Value {
    /// Compact (no-whitespace) serialization.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl core::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        &self.as_object().expect("indexing a non-object JSON value")[key]
    }
}

impl core::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.as_array().expect("indexing a non-array JSON value")[i]
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::Int(x as i64)
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64);

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::UInt(x as u64)
            }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        // Round-trip through the decimal shortest representation so `0.09f32`
        // serializes as `0.09`, not `0.09000000357627869`.
        Value::Float(x.to_string().parse().unwrap_or(x as f64))
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

impl From<&str> for Value {
    fn from(x: &str) -> Value {
        Value::Str(x.to_string())
    }
}

impl From<String> for Value {
    fn from(x: String) -> Value {
        Value::Str(x)
    }
}

impl From<Map> for Value {
    fn from(x: Map) -> Value {
        Value::Object(x)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(x: Vec<T>) -> Value {
        Value::Array(x.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Object keys are string literals; values are nested literals or arbitrary
/// Rust expressions (anything convertible to [`Value`] via `From`).
///
/// # Examples
///
/// ```
/// use cosmos_common::json::json;
/// let ipc = 0.5;
/// let v = json!({"kernel": "bfs", "ipc": ipc, "norm": ipc / 0.25});
/// assert_eq!(v["norm"].as_f64(), Some(2.0));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items = ::std::vec::Vec::<$crate::json::Value>::new();
        $crate::json_items!(items () $($tt)*);
        $crate::json::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::json::Map::new();
        $crate::json_entries!(map $($tt)*);
        $crate::json::Value::Object(map)
    }};
    ($other:expr) => { $crate::json::Value::from($other) };
}

/// Internal: accumulates array elements (tt-muncher, splits on top-level
/// commas so elements may be arbitrary expressions).
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($vec:ident ()) => {};
    ($vec:ident ($($buf:tt)+)) => {
        // `extend` rather than `push`: a `Vec::new()` followed by pushes in
        // the same expansion trips clippy::vec_init_then_push at every call
        // site, and the macro cannot know its element count up front.
        $vec.extend([$crate::json!($($buf)+)]);
    };
    ($vec:ident ($($buf:tt)+) , $($rest:tt)*) => {
        $vec.extend([$crate::json!($($buf)+)]);
        $crate::json_items!($vec () $($rest)*);
    };
    ($vec:ident ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_items!($vec ($($buf)* $next) $($rest)*);
    };
}

/// Internal: parses `"key": value` object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident) => {};
    ($map:ident $key:literal : $($rest:tt)+) => {
        $crate::json_entry_value!($map $key () $($rest)+);
    };
}

/// Internal: accumulates one entry's value tokens up to a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entry_value {
    ($map:ident $key:literal ($($buf:tt)+)) => {
        $map.insert($key, $crate::json!($($buf)+));
    };
    ($map:ident $key:literal ($($buf:tt)+) , $($rest:tt)*) => {
        $map.insert($key, $crate::json!($($buf)+));
        $crate::json_entries!($map $($rest)*);
    };
    ($map:ident $key:literal ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_entry_value!($map $key ($($buf)* $next) $($rest)*);
    };
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// Strict: exactly one top-level value, no trailing garbage, no comments,
/// no trailing commas. Numbers parse back into the same variants the
/// serializer emits — an unsigned integer literal becomes [`Value::UInt`],
/// a negative one [`Value::Int`], and anything with a fraction or exponent
/// [`Value::Float`] (Rust's shortest-representation float formatting
/// guarantees `parse(v.to_string()) == v` for finite floats).
///
/// # Examples
///
/// ```
/// use cosmos_common::json::{json, parse};
/// let v = json!({"a": 1, "b": [2.5, "x"], "c": null});
/// assert_eq!(parse(&v.to_string()).unwrap(), v);
/// assert_eq!(parse(&v.pretty()).unwrap(), v);
/// assert!(parse("{\"a\": }").is_err());
/// ```
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(value)
}

/// Recursion guard: deeper nesting than any document this workspace emits.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `lit` (used after its first byte has been peeked).
    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume `{`
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening `"`
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // the next char boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .expect("rest is non-empty: pos < bytes.len() in this branch");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported).
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        // Leading zero may not be followed by more digits (strict JSON).
        if self.peek() == Some(b'0')
            && matches!(self.bytes.get(self.pos + 1), Some(c) if c.is_ascii_digit())
        {
            return Err(self.err("leading zeros are not allowed"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            // Integer literal outside 64-bit range: fall through to float.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Field-extraction helpers for hand-written deserializers.
///
/// Snapshot restore across the workspace decodes JSON back into typed
/// state; these helpers centralize the error phrasing so every missing or
/// mistyped field reports its key ("snapshot field `tags`: expected an
/// array of u64") instead of a bare `None`.
pub mod codec {
    use super::{Map, Value};

    /// The value as an object.
    pub fn obj<'a>(v: &'a Value, what: &str) -> Result<&'a Map, String> {
        v.as_object()
            .ok_or_else(|| format!("{what}: expected a JSON object"))
    }

    /// The named field of an object.
    pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
        v.get(key).ok_or_else(|| format!("missing field `{key}`"))
    }

    /// A `u64` field.
    pub fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
        field(v, key)?
            .as_u64()
            .ok_or_else(|| format!("field `{key}`: expected a u64"))
    }

    /// A `usize` field.
    pub fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
        u64_field(v, key).and_then(|x| {
            usize::try_from(x).map_err(|_| format!("field `{key}`: value {x} overflows usize"))
        })
    }

    /// A string field.
    pub fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
        field(v, key)?
            .as_str()
            .ok_or_else(|| format!("field `{key}`: expected a string"))
    }

    /// A bool field.
    pub fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
        field(v, key)?
            .as_bool()
            .ok_or_else(|| format!("field `{key}`: expected a bool"))
    }

    /// An `f64` field (integers accepted — JSON does not distinguish).
    pub fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
        field(v, key)?
            .as_f64()
            .ok_or_else(|| format!("field `{key}`: expected a number"))
    }

    /// An array field decoded element-wise as `u64`.
    pub fn u64_array(v: &Value, key: &str) -> Result<Vec<u64>, String> {
        let arr = field(v, key)?
            .as_array()
            .ok_or_else(|| format!("field `{key}`: expected an array"))?;
        arr.iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| format!("field `{key}`: expected an array of u64"))
            })
            .collect()
    }

    /// An array field decoded element-wise as `u8`.
    pub fn u8_array(v: &Value, key: &str) -> Result<Vec<u8>, String> {
        u64_array(v, key)?
            .into_iter()
            .map(|x| u8::try_from(x).map_err(|_| format!("field `{key}`: value {x} overflows u8")))
            .collect()
    }

    /// An array field decoded element-wise as `u32`.
    pub fn u32_array(v: &Value, key: &str) -> Result<Vec<u32>, String> {
        u64_array(v, key)?
            .into_iter()
            .map(|x| {
                u32::try_from(x).map_err(|_| format!("field `{key}`: value {x} overflows u32"))
            })
            .collect()
    }

    /// An array field decoded element-wise as `i64`.
    pub fn i64_array(v: &Value, key: &str) -> Result<Vec<i64>, String> {
        let arr = field(v, key)?
            .as_array()
            .ok_or_else(|| format!("field `{key}`: expected an array"))?;
        arr.iter()
            .map(|x| {
                x.as_i64()
                    .ok_or_else(|| format!("field `{key}`: expected an array of i64"))
            })
            .collect()
    }

    /// Encodes an iterator of `u64`-convertible integers as a JSON array.
    pub fn from_u64s(xs: impl IntoIterator<Item = u64>) -> Value {
        Value::Array(xs.into_iter().map(Value::UInt).collect())
    }

    /// Encodes an iterator of signed integers as a JSON array.
    pub fn from_i64s(xs: impl IntoIterator<Item = i64>) -> Value {
        Value::Array(xs.into_iter().map(Value::Int).collect())
    }

    /// Checks a restored array's length against the constructed geometry.
    pub fn check_len(key: &str, got: usize, expected: usize) -> Result<(), String> {
        if got == expected {
            Ok(())
        } else {
            Err(format!(
                "field `{key}`: length {got} does not match expected {expected}"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(true).to_string(), "true");
        assert_eq!(json!(3u64).to_string(), "3");
        assert_eq!(json!(-7).to_string(), "-7");
        assert_eq!(json!(1.5).to_string(), "1.5");
        assert_eq!(json!(1.0).to_string(), "1.0");
        assert_eq!(json!("hi").to_string(), "\"hi\"");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }

    #[test]
    fn f32_values_round_trip_decimally() {
        assert_eq!(json!(0.09f32).to_string(), "0.09");
        assert_eq!(json!(0.35f32).to_string(), "0.35");
    }

    #[test]
    fn arrays_and_expressions() {
        let x = 4;
        let v = json!([1, x + 1, "s", [true]]);
        assert_eq!(v.to_string(), "[1,5,\"s\",[true]]");
        assert_eq!(v[1].as_i64(), Some(5));
        assert_eq!(json!([]).to_string(), "[]");
    }

    #[test]
    fn objects_nested_and_ordered() {
        let t = (2u64, 3u64);
        let v = json!({
            "b": 1,
            "a": {"x": t.0 + t.1, "y": [1, 2]},
            "s": "str",
        });
        // Insertion order is preserved (not sorted).
        assert_eq!(
            v.to_string(),
            "{\"b\":1,\"a\":{\"x\":5,\"y\":[1,2]},\"s\":\"str\"}"
        );
        assert_eq!(v["a"]["x"].as_u64(), Some(5));
    }

    #[test]
    fn pretty_matches_two_space_style() {
        let v = json!({"a": 1, "b": [true, null]});
        assert_eq!(
            v.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
        assert_eq!(json!({}).pretty(), "{}");
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("k", json!(1));
        m.insert("j", json!(2));
        assert_eq!(m.insert("k", json!(3)), Some(json!(1)));
        assert_eq!(Value::Object(m).to_string(), "{\"k\":3,\"j\":2}");
    }

    #[test]
    fn string_escaping() {
        let v = json!("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn vec_of_values_converts() {
        let rows = vec![json!(1), json!("x")];
        let v = json!({"rows": rows});
        assert_eq!(v.to_string(), "{\"rows\":[1,\"x\"]}");
    }

    #[test]
    fn index_by_key_and_position() {
        let v = json!({"rows": [{"k": "bfs"}]});
        assert_eq!(v["rows"][0]["k"].as_str(), Some("bfs"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let v = json!({
            "name": "fig02",
            "count": 18_446_744_073_709_551_615u64,
            "neg": -42,
            "pi": (std::f64::consts::PI),
            "tiny": 1e-300,
            "flags": [true, false, null],
            "nested": {"s": "a\"b\\c\nd\u{1}", "empty": [], "obj": {}},
        });
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_number_variants_match_serializer() {
        assert_eq!(parse("7").unwrap(), Value::UInt(7));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("7.0").unwrap(), Value::Float(7.0));
        assert_eq!(parse("1.5e3").unwrap(), Value::Float(1500.0));
        // u64::MAX stays exact; beyond it degrades to float.
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert!(matches!(
            parse("18446744073709551616").unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn parse_float_bit_exact_round_trip() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX, -2.5e-10] {
            let s = Value::Float(f).to_string();
            assert_eq!(parse(&s).unwrap(), Value::Float(f), "{s}");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).unwrap(), json!("Aé"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), json!("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"unterminated",
            "[1] trailing",
            "nan",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse("{\"key\": !}").unwrap_err();
        assert_eq!(err.offset, 8);
        assert!(err.to_string().contains("byte 8"), "{err}");
    }

    #[test]
    fn parse_accepts_whitespace_everywhere() {
        let v = parse(" \t\n{ \"a\" : [ 1 , 2 ] , \"b\" : { } } \r\n").unwrap();
        assert_eq!(v, json!({"a": [1, 2], "b": {}}));
    }
}
