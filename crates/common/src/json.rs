//! A minimal JSON document model and serializer.
//!
//! The experiment harnesses emit machine-readable results; this module
//! replaces the `serde`/`serde_json` dependency with a self-contained
//! equivalent so the workspace builds with **zero registry dependencies**
//! (the build environment has no network access to crates.io).
//!
//! Supported surface — deliberately only what the workspace uses:
//!
//! - [`Value`]: null / bool / integer / float / string / array / object,
//! - [`Map`]: an insertion-ordered string→[`Value`] map,
//! - [`json!`](crate::json!): a literal macro accepting arbitrary Rust
//!   expressions in value position,
//! - [`Value::to_string`](core::fmt::Display) (compact) and
//!   [`Value::pretty`] (2-space indent, `serde_json`-style).
//!
//! # Examples
//!
//! ```
//! use cosmos_common::json::{json, Value};
//! let v = json!({"name": "dfs", "ipc": 0.25, "rows": [1, 2, 3]});
//! assert_eq!(v["name"].as_str(), Some("dfs"));
//! assert_eq!(v["rows"][2].as_u64(), Some(3));
//! assert!(v.pretty().contains("\"ipc\": 0.25"));
//! ```

pub use crate::json;

/// An insertion-ordered JSON object.
///
/// Iteration and serialization follow insertion order, which keeps emitted
/// documents deterministic and in the order the harness built them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub const fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Inserts `value` under `key`, replacing (in place) any existing entry.
    /// Returns the previous value, if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(core::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl core::ops::Index<&str> for Map {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
            // cosmos-lint: allow(P2): std Index contract requires a panic on a missing key
            .unwrap_or_else(|| panic!("no key {key:?} in JSON object"))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64` counters round-trip).
    UInt(u64),
    /// A double. Non-finite values serialize as `null` (JSON has no NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integer variants).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serializes with 2-space indentation (like `to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) if f.is_finite() => {
                // `{:?}` keeps a trailing `.0` on whole floats, matching the
                // conventional JSON rendering of a float-typed field.
                out.push_str(&format!("{f:?}"));
            }
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl core::fmt::Display for Value {
    /// Compact (no-whitespace) serialization.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl core::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        &self.as_object().expect("indexing a non-object JSON value")[key]
    }
}

impl core::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.as_array().expect("indexing a non-array JSON value")[i]
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::Int(x as i64)
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64);

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::UInt(x as u64)
            }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        // Round-trip through the decimal shortest representation so `0.09f32`
        // serializes as `0.09`, not `0.09000000357627869`.
        Value::Float(x.to_string().parse().unwrap_or(x as f64))
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

impl From<&str> for Value {
    fn from(x: &str) -> Value {
        Value::Str(x.to_string())
    }
}

impl From<String> for Value {
    fn from(x: String) -> Value {
        Value::Str(x)
    }
}

impl From<Map> for Value {
    fn from(x: Map) -> Value {
        Value::Object(x)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(x: Vec<T>) -> Value {
        Value::Array(x.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Object keys are string literals; values are nested literals or arbitrary
/// Rust expressions (anything convertible to [`Value`] via `From`).
///
/// # Examples
///
/// ```
/// use cosmos_common::json::json;
/// let ipc = 0.5;
/// let v = json!({"kernel": "bfs", "ipc": ipc, "norm": ipc / 0.25});
/// assert_eq!(v["norm"].as_f64(), Some(2.0));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items = ::std::vec::Vec::<$crate::json::Value>::new();
        $crate::json_items!(items () $($tt)*);
        $crate::json::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::json::Map::new();
        $crate::json_entries!(map $($tt)*);
        $crate::json::Value::Object(map)
    }};
    ($other:expr) => { $crate::json::Value::from($other) };
}

/// Internal: accumulates array elements (tt-muncher, splits on top-level
/// commas so elements may be arbitrary expressions).
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($vec:ident ()) => {};
    ($vec:ident ($($buf:tt)+)) => {
        // `extend` rather than `push`: a `Vec::new()` followed by pushes in
        // the same expansion trips clippy::vec_init_then_push at every call
        // site, and the macro cannot know its element count up front.
        $vec.extend([$crate::json!($($buf)+)]);
    };
    ($vec:ident ($($buf:tt)+) , $($rest:tt)*) => {
        $vec.extend([$crate::json!($($buf)+)]);
        $crate::json_items!($vec () $($rest)*);
    };
    ($vec:ident ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_items!($vec ($($buf)* $next) $($rest)*);
    };
}

/// Internal: parses `"key": value` object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident) => {};
    ($map:ident $key:literal : $($rest:tt)+) => {
        $crate::json_entry_value!($map $key () $($rest)+);
    };
}

/// Internal: accumulates one entry's value tokens up to a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entry_value {
    ($map:ident $key:literal ($($buf:tt)+)) => {
        $map.insert($key, $crate::json!($($buf)+));
    };
    ($map:ident $key:literal ($($buf:tt)+) , $($rest:tt)*) => {
        $map.insert($key, $crate::json!($($buf)+));
        $crate::json_entries!($map $($rest)*);
    };
    ($map:ident $key:literal ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_entry_value!($map $key ($($buf)* $next) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(true).to_string(), "true");
        assert_eq!(json!(3u64).to_string(), "3");
        assert_eq!(json!(-7).to_string(), "-7");
        assert_eq!(json!(1.5).to_string(), "1.5");
        assert_eq!(json!(1.0).to_string(), "1.0");
        assert_eq!(json!("hi").to_string(), "\"hi\"");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }

    #[test]
    fn f32_values_round_trip_decimally() {
        assert_eq!(json!(0.09f32).to_string(), "0.09");
        assert_eq!(json!(0.35f32).to_string(), "0.35");
    }

    #[test]
    fn arrays_and_expressions() {
        let x = 4;
        let v = json!([1, x + 1, "s", [true]]);
        assert_eq!(v.to_string(), "[1,5,\"s\",[true]]");
        assert_eq!(v[1].as_i64(), Some(5));
        assert_eq!(json!([]).to_string(), "[]");
    }

    #[test]
    fn objects_nested_and_ordered() {
        let t = (2u64, 3u64);
        let v = json!({
            "b": 1,
            "a": {"x": t.0 + t.1, "y": [1, 2]},
            "s": "str",
        });
        // Insertion order is preserved (not sorted).
        assert_eq!(
            v.to_string(),
            "{\"b\":1,\"a\":{\"x\":5,\"y\":[1,2]},\"s\":\"str\"}"
        );
        assert_eq!(v["a"]["x"].as_u64(), Some(5));
    }

    #[test]
    fn pretty_matches_two_space_style() {
        let v = json!({"a": 1, "b": [true, null]});
        assert_eq!(
            v.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
        assert_eq!(json!({}).pretty(), "{}");
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("k", json!(1));
        m.insert("j", json!(2));
        assert_eq!(m.insert("k", json!(3)), Some(json!(1)));
        assert_eq!(Value::Object(m).to_string(), "{\"k\":3,\"j\":2}");
    }

    #[test]
    fn string_escaping() {
        let v = json!("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn vec_of_values_converts() {
        let rows = vec![json!(1), json!("x")];
        let v = json!({"rows": rows});
        assert_eq!(v.to_string(), "{\"rows\":[1,\"x\"]}");
    }

    #[test]
    fn index_by_key_and_position() {
        let v = json!({"rows": [{"k": "bfs"}]});
        assert_eq!(v["rows"][0]["k"].as_str(), Some("bfs"));
        assert_eq!(v.get("missing"), None);
    }
}
