//! Memory-access trace types shared between workload generators and the
//! simulator.
//!
//! A *trace* is a sequence of [`MemAccess`] records. Each record carries the
//! issuing core, the byte address, read/write kind, and the number of
//! non-memory instructions the core executed since its previous memory
//! access (`inst_gap`) — enough for the simulator's timing model to compute
//! IPC without a full instruction trace.

use crate::addr::PhysAddr;

/// Whether an access reads or writes memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One memory access in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Issuing core (0-based).
    pub core: u8,
    /// Issuing tenant (0-based). Single-tenant traces leave this at 0;
    /// multi-tenant compositions (`cosmos_workloads::tenant`) tag each
    /// stream so the simulator can attribute metadata-cache activity
    /// attacker-vs-victim. Tenant 0 is the default/victim tenant, so a
    /// tenant-oblivious trace behaves exactly as before.
    pub tenant: u8,
    /// Load or store.
    pub kind: AccessKind,
    /// Byte address accessed.
    pub addr: PhysAddr,
    /// Non-memory instructions executed on `core` since its previous access.
    pub inst_gap: u32,
}

impl MemAccess {
    /// Convenience constructor for a read (tenant 0).
    pub fn read(core: u8, addr: PhysAddr, inst_gap: u32) -> Self {
        Self {
            core,
            tenant: 0,
            kind: AccessKind::Read,
            addr,
            inst_gap,
        }
    }

    /// Convenience constructor for a write (tenant 0).
    pub fn write(core: u8, addr: PhysAddr, inst_gap: u32) -> Self {
        Self {
            core,
            tenant: 0,
            kind: AccessKind::Write,
            addr,
            inst_gap,
        }
    }

    /// Returns the access re-tagged with `tenant`.
    #[must_use]
    pub const fn with_tenant(mut self, tenant: u8) -> Self {
        self.tenant = tenant;
        self
    }
}

/// An owned, in-memory access trace.
///
/// # Examples
///
/// ```
/// use cosmos_common::{Trace, MemAccess, PhysAddr};
/// let mut t = Trace::new();
/// t.push(MemAccess::read(0, PhysAddr::new(0x100), 4));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    accesses: Vec<MemAccess>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            accesses: Vec::with_capacity(n),
        }
    }

    /// Appends an access.
    #[inline]
    pub fn push(&mut self, access: MemAccess) {
        self.accesses.push(access);
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses as a slice.
    pub fn as_slice(&self) -> &[MemAccess] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> core::slice::Iter<'_, MemAccess> {
        self.accesses.iter()
    }

    /// Truncates the trace to at most `n` accesses.
    pub fn truncate(&mut self, n: usize) {
        self.accesses.truncate(n);
    }

    /// Fraction of accesses that are writes; `0.0` when empty.
    pub fn write_fraction(&self) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        let w = self.accesses.iter().filter(|a| a.kind.is_write()).count();
        w as f64 / self.accesses.len() as f64
    }

    /// Highest core id present plus one; 0 when empty.
    pub fn core_count(&self) -> usize {
        self.accesses
            .iter()
            .map(|a| a.core as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

impl FromIterator<MemAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = MemAccess>>(iter: I) -> Self {
        Self {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemAccess> for Trace {
    fn extend<I: IntoIterator<Item = MemAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = MemAccess;
    type IntoIter = std::vec::IntoIter<MemAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemAccess;
    type IntoIter = core::slice::Iter<'a, MemAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

/// A source of memory accesses that the simulator can drain lazily.
///
/// Implemented by the in-memory [`Trace`] as well as by streaming workload
/// generators that synthesize accesses on the fly (avoiding materializing
/// hundreds of millions of records).
pub trait TraceSource {
    /// Produces the next access, or `None` when the workload is finished.
    fn next_access(&mut self) -> Option<MemAccess>;

    /// A size hint: expected total accesses, if known.
    fn expected_len(&self) -> Option<usize> {
        None
    }
}

/// Draining adapter over an owned [`Trace`].
#[derive(Clone, Debug)]
pub struct TraceIter {
    trace: std::vec::IntoIter<MemAccess>,
    len: usize,
}

impl TraceIter {
    /// Creates a draining source from a trace.
    pub fn new(trace: Trace) -> Self {
        let len = trace.len();
        Self {
            trace: trace.into_iter(),
            len,
        }
    }
}

impl TraceSource for TraceIter {
    fn next_access(&mut self) -> Option<MemAccess> {
        self.trace.next()
    }

    fn expected_len(&self) -> Option<usize> {
        Some(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(MemAccess::read(0, PhysAddr::new(0x100), 1));
        t.push(MemAccess::write(1, PhysAddr::new(0x200), 2));
        t.push(MemAccess::read(0, PhysAddr::new(0x300), 3));
        t
    }

    #[test]
    fn push_and_len() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn write_fraction() {
        let t = sample();
        assert!((t.write_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(Trace::new().write_fraction(), 0.0);
    }

    #[test]
    fn core_count() {
        assert_eq!(sample().core_count(), 2);
        assert_eq!(Trace::new().core_count(), 0);
    }

    #[test]
    fn tenant_defaults_to_zero_and_retags() {
        let a = MemAccess::read(0, PhysAddr::new(0x100), 1);
        assert_eq!(a.tenant, 0);
        let b = a.with_tenant(3);
        assert_eq!(b.tenant, 3);
        // Everything else is untouched by the retag.
        assert_eq!(
            (b.core, b.kind, b.addr, b.inst_gap),
            (a.core, a.kind, a.addr, a.inst_gap)
        );
    }

    #[test]
    fn from_iterator_roundtrip() {
        let t = sample();
        let t2: Trace = t.iter().copied().collect();
        assert_eq!(t, t2);
    }

    #[test]
    fn trace_iter_drains_in_order() {
        let t = sample();
        let expected: Vec<_> = t.iter().copied().collect();
        let mut src = TraceIter::new(t);
        assert_eq!(src.expected_len(), Some(3));
        let mut got = Vec::new();
        while let Some(a) = src.next_access() {
            got.push(a);
        }
        assert_eq!(got, expected);
    }
}
