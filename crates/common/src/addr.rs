//! Physical-address, cache-line, and page newtypes.
//!
//! The simulator manipulates three granularities of address constantly:
//! byte-granular physical addresses, 64 B cache-line indices, and 4 KiB page
//! indices. Newtypes keep them statically distinct (it is an easy and
//! catastrophic bug to index a cache with a byte address where a line index
//! was meant).

use core::fmt;

/// Size of a cache line in bytes (64 B throughout the paper).
pub const LINE_SIZE: usize = 64;
/// `log2(LINE_SIZE)`.
pub const LINE_SHIFT: u32 = 6;
/// Size of a page in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// `log2(PAGE_SIZE)`.
pub const PAGE_SHIFT: u32 = 12;

/// A byte-granular physical address.
///
/// # Examples
///
/// ```
/// use cosmos_common::PhysAddr;
/// let a = PhysAddr::new(0x40);
/// assert_eq!(a.line().index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Returns the page containing this address.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_SHIFT)
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0.wrapping_add(bytes))
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line index (a physical address divided by [`LINE_SIZE`]).
///
/// # Examples
///
/// ```
/// use cosmos_common::{LineAddr, PhysAddr};
/// let l = LineAddr::new(3);
/// assert_eq!(l.base(), PhysAddr::new(192));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line index directly.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the line index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the line.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }

    /// Returns the page containing this line.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }

    /// Returns the line advanced by `n` lines (wrapping).
    #[inline]
    pub const fn offset(self, n: i64) -> Self {
        Self(self.0.wrapping_add(n as u64))
    }

    /// Absolute distance in lines between two line addresses.
    #[inline]
    pub const fn distance(self, other: LineAddr) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A page index (a physical address divided by [`PAGE_SIZE`]).
///
/// # Examples
///
/// ```
/// use cosmos_common::{PageAddr, PhysAddr};
/// assert_eq!(PhysAddr::new(0x1000).page(), PageAddr::new(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page index directly.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the page.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the first line of the page.
    #[inline]
    pub const fn first_line(self) -> LineAddr {
        LineAddr(self.0 << (PAGE_SHIFT - LINE_SHIFT))
    }
}

impl From<u64> for PageAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageAddr({:#x})", self.0)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_extraction() {
        let a = PhysAddr::new(0x1_2345);
        assert_eq!(a.line().index(), 0x1_2345 >> 6);
        assert_eq!(a.page().index(), 0x1_2345 >> 12);
    }

    #[test]
    fn line_base_is_aligned() {
        for i in [0u64, 1, 7, 12345, u64::MAX >> LINE_SHIFT] {
            let l = LineAddr::new(i);
            assert_eq!(l.base().value() % LINE_SIZE as u64, 0);
            assert_eq!(l.base().line(), l);
        }
    }

    #[test]
    fn page_contains_its_lines() {
        let p = PageAddr::new(17);
        let lines_per_page = (PAGE_SIZE / LINE_SIZE) as u64;
        for i in 0..lines_per_page {
            assert_eq!(p.first_line().offset(i as i64).page(), p);
        }
        assert_ne!(p.first_line().offset(lines_per_page as i64).page(), p);
    }

    #[test]
    fn line_distance_is_symmetric() {
        let a = LineAddr::new(100);
        let b = LineAddr::new(164);
        assert_eq!(a.distance(b), 64);
        assert_eq!(b.distance(a), 64);
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    fn offset_wraps_negative() {
        let a = LineAddr::new(10);
        assert_eq!(a.offset(-3).index(), 7);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:?}", LineAddr::new(16)), "LineAddr(0x10)");
    }
}
