//! Shared primitives for the COSMOS secure-memory simulator.
//!
//! This crate holds the small, dependency-free vocabulary types used by every
//! other crate in the workspace:
//!
//! - address newtypes ([`PhysAddr`], [`LineAddr`], [`PageAddr`]) with the
//!   cache-line / page arithmetic the simulator performs constantly,
//! - the splitmix64-based state hashing used by the paper's RL predictors
//!   (§4.1.1 of the paper), in [`hash`],
//! - a deterministic, seedable random-number generator ([`rng::SplitMix64`])
//!   so every simulation is reproducible,
//! - cycle-count arithmetic ([`Cycle`]),
//! - memory-access/trace types ([`MemAccess`], [`AccessKind`]) shared between
//!   workload generators and the simulator,
//! - lightweight statistics counters ([`stats`]),
//! - ready-time timing primitives ([`timing`]) shared by the DRAM bank
//!   model and the event-driven simulator core,
//! - a dependency-free JSON document model ([`json`]) the experiment
//!   harnesses use to emit machine-readable results.
//!
//! # Examples
//!
//! ```
//! use cosmos_common::{PhysAddr, LineAddr, LINE_SIZE};
//!
//! let a = PhysAddr::new(0x1234_5678);
//! let line: LineAddr = a.line();
//! assert_eq!(line.base().value() % LINE_SIZE as u64, 0);
//! ```

pub mod addr;
pub mod cycle;
pub mod hash;
pub mod json;
pub mod rng;
pub mod stats;
pub mod timing;
pub mod trace;

pub use addr::{LineAddr, PageAddr, PhysAddr, LINE_SHIFT, LINE_SIZE, PAGE_SHIFT, PAGE_SIZE};
pub use cycle::Cycle;
pub use rng::SplitMix64;
pub use trace::{AccessKind, MemAccess, Trace, TraceSource};
