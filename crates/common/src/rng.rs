//! Deterministic pseudo-random number generation.
//!
//! Everything stochastic in the workspace — ε-greedy exploration, synthetic
//! graph generation, trace synthesis — draws from [`SplitMix64`], a tiny,
//! fully deterministic generator, so that a fixed seed reproduces a
//! simulation bit-for-bit. (We deliberately do not pull the `rand` crate into
//! the substrate crates; top-level drivers may still use `rand` for
//! convenience.)

use crate::hash::splitmix64;

/// A splitmix64 pseudo-random number generator.
///
/// Statistically strong enough for simulation purposes, 8 bytes of state,
/// and `Copy`-cheap to fork.
///
/// # Examples
///
/// ```
/// use cosmos_common::SplitMix64;
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        // Re-mix the *post-increment* state exactly like the canonical
        // generator: splitmix64() adds the increment again internally, so we
        // feed it the state minus one increment.
        splitmix64(self.state.wrapping_sub(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `0..bound`. Returns 0 when `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // 128-bit multiply method (Lemire); negligible bias without rejection
        // is fine for simulation, but rejection keeps it exact.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `0..bound`. Returns 0 when `bound == 0`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent generator, advancing this one.
    #[inline]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    /// Seeds with a fixed constant; prefer [`SplitMix64::new`] with an
    /// explicit seed in experiments.
    fn default() -> Self {
        Self::new(0x5EED_C053_05AB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_canonical_splitmix64_stream() {
        // Canonical splitmix64 with seed 0: first two outputs.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SplitMix64::new(123);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = SplitMix64::new(1);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(2024);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bucket {i} count {c} far from uniform"
            );
        }
    }
}
