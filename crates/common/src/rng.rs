//! Deterministic pseudo-random number generation.
//!
//! Everything stochastic in the workspace — ε-greedy exploration, synthetic
//! graph generation, trace synthesis — draws from [`SplitMix64`], a tiny,
//! fully deterministic generator, so that a fixed seed reproduces a
//! simulation bit-for-bit. (We deliberately do not pull the `rand` crate into
//! the substrate crates; top-level drivers may still use `rand` for
//! convenience.)

use crate::hash::splitmix64;
use crate::json::Value;

/// A splitmix64 pseudo-random number generator.
///
/// Statistically strong enough for simulation purposes, 8 bytes of state,
/// and `Copy`-cheap to fork.
///
/// # Examples
///
/// ```
/// use cosmos_common::SplitMix64;
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw internal state. `SplitMix64::new(rng.state())` reconstructs
    /// a generator that continues the stream exactly — the whole story of
    /// RNG snapshot/restore.
    #[inline]
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        // Re-mix the *post-increment* state exactly like the canonical
        // generator: splitmix64() adds the increment again internally, so we
        // feed it the state minus one increment.
        splitmix64(self.state.wrapping_sub(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `0..bound`. Returns 0 when `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // 128-bit multiply method (Lemire); negligible bias without rejection
        // is fine for simulation, but rejection keeps it exact.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `0..bound`. Returns 0 when `bound == 0`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent generator, advancing this one.
    #[inline]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    /// Seeds with a fixed constant; prefer [`SplitMix64::new`] with an
    /// explicit seed in experiments.
    fn default() -> Self {
        Self::new(0x5EED_C053_05AB)
    }
}

/// A named seed-derivation rule: one logical random stream of the
/// workspace, identified by a stable name and derived from a base seed by
/// `seed ^ salt` (optionally xor-ing a lane index shifted into the high
/// bits, for per-core generators).
///
/// Every stream the workspace draws from is declared as a constant in
/// [`streams`], so (1) two components can never silently share a stream,
/// and (2) a snapshot can enumerate streams *by name* — the
/// [`RngRegistry`] records `(name, state)` pairs, and restore looks the
/// state up under the same name instead of re-deriving from the seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamTag {
    /// Stable identifier, used as the registry key.
    pub name: &'static str,
    /// XOR salt applied to the base seed.
    pub salt: u64,
    /// Left shift applied to the lane index in [`StreamTag::derive_lane`].
    pub lane_shift: u32,
}

impl StreamTag {
    /// The derived seed for this stream. Numerically identical to the
    /// historical ad-hoc `seed ^ salt` call sites, so routing a site
    /// through its tag changes no committed artifact.
    #[inline]
    pub const fn derive_seed(&self, seed: u64) -> u64 {
        seed ^ self.salt
    }

    /// The derived per-lane (per-core) seed for indexed streams.
    #[inline]
    pub const fn derive_lane_seed(&self, seed: u64, lane: u64) -> u64 {
        seed ^ (lane << self.lane_shift) ^ self.salt
    }

    /// Derives the stream's generator from a base seed.
    #[inline]
    pub const fn derive(&self, seed: u64) -> SplitMix64 {
        SplitMix64::new(self.derive_seed(seed))
    }

    /// Derives the per-lane (per-core) generator for indexed streams.
    #[inline]
    pub const fn derive_lane(&self, seed: u64, lane: u64) -> SplitMix64 {
        SplitMix64::new(self.derive_lane_seed(seed, lane))
    }
}

/// Every named random stream in the workspace. Salts predate the registry
/// (they were inline `seed ^ 0x…` expressions); the constants here pin
/// them so artifacts stay byte-identical.
pub mod streams {
    use super::StreamTag;

    const fn tag(name: &'static str, salt: u64) -> StreamTag {
        StreamTag {
            name,
            salt,
            lane_shift: 0,
        }
    }

    const fn lane_tag(name: &'static str, salt: u64, lane_shift: u32) -> StreamTag {
        StreamTag {
            name,
            salt,
            lane_shift,
        }
    }

    /// ε-greedy exploration of the data-location predictor (simulator
    /// state: captured by snapshots).
    pub const DATA_PREDICTOR: StreamTag = tag("rl.data_predictor", 0xDA7A);
    /// ε-greedy exploration of the CTR-locality predictor (simulator
    /// state: captured by snapshots).
    pub const CTR_PREDICTOR: StreamTag = tag("rl.ctr_predictor", 0xC7_12);
    /// Random-replacement cache policy (simulator state; boxed policies
    /// are gated out of snapshots — see `cosmos_cache`).
    pub const REPLACEMENT_RANDOM: StreamTag = tag("cache.replacement_random", 0);
    /// DRRIP set-dueling policy (fixed historical seed, no base).
    pub const DRRIP: StreamTag = tag("cache.drrip", 0xD_EE1);

    /// STREAM-triad synthetic workload, per core (input side: regenerated
    /// from the config on resume, never snapshotted).
    pub const WORKLOAD_STREAMING: StreamTag = lane_tag("workload.streaming", 0x57EA, 40);
    /// SPEC-like synthetic workload, per core (input side).
    pub const WORKLOAD_SPEC: StreamTag = lane_tag("workload.spec", 0x57EC, 40);
    /// ML kernel synthetic workload, per core (input side).
    pub const WORKLOAD_ML: StreamTag = lane_tag("workload.ml", 0x3117, 36);
    /// Graph-kernel trace emitter, per core (input side).
    pub const WORKLOAD_GRAPH: StreamTag = lane_tag("workload.graph", 0, 32);
    /// Multi-workload trace interleaver (input side).
    pub const WORKLOAD_INTERLEAVE: StreamTag = tag("workload.interleave", 0x1A7E_1EAF);
    /// Multi-tenant trace composition (`cosmos_workloads::tenant`,
    /// input side).
    pub const WORKLOAD_TENANT_MIX: StreamTag = tag("workload.tenant_mix", 0x7E4A_0717);
    /// Keyed CTR-cache index permutation (config side: the derived seed
    /// *is* the key; no live generator state).
    pub const CTR_INDEX_KEY: StreamTag = tag("cache.ctr_index_key", 0x1D_E35E);
    /// Fuzzer config mutation stream (harness side).
    pub const FUZZ_CONFIG: StreamTag = tag("fuzz.config", 0xF0_22);
    /// Fuzzer trace synthesis stream (harness side).
    pub const FUZZ_TRACE: StreamTag = tag("fuzz.trace", 0x7_2ACE);
}

/// The serializable registry of RNG stream states in one snapshot.
///
/// Each simulator-side component contributes its generators under their
/// [`StreamTag`] names at snapshot time; on restore the component takes
/// its state back out by name. A name-keyed (rather than positional)
/// format keeps snapshots robust against components being added or
/// reordered, and makes a missing stream a *loud* failure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RngRegistry {
    entries: Vec<(String, u64)>,
}

impl RngRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Records `rng`'s state under `name`, replacing any previous entry.
    pub fn record(&mut self, name: &str, rng: &SplitMix64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, s)) => *s = rng.state(),
            None => self.entries.push((name.to_string(), rng.state())),
        }
    }

    /// Reconstructs the generator recorded under `name`.
    pub fn restore(&self, name: &str) -> Result<SplitMix64, String> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| SplitMix64::new(*s))
            .ok_or_else(|| format!("snapshot has no RNG stream named {name:?}"))
    }

    /// Number of recorded streams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no streams are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes as `{name: state, …}` in insertion order.
    pub fn to_json(&self) -> Value {
        let mut map = crate::json::Map::new();
        for (name, state) in &self.entries {
            map.insert(name.clone(), Value::UInt(*state));
        }
        Value::Object(map)
    }

    /// Rebuilds a registry from [`RngRegistry::to_json`] output.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let map = v
            .as_object()
            .ok_or_else(|| "RNG registry must be a JSON object".to_string())?;
        let mut reg = RngRegistry::new();
        for (name, state) in map.iter() {
            let state = state
                .as_u64()
                .ok_or_else(|| format!("RNG stream {name:?} state must be a u64"))?;
            reg.entries.push((name.to_string(), state));
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_canonical_splitmix64_stream() {
        // Canonical splitmix64 with seed 0: first two outputs.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SplitMix64::new(123);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = SplitMix64::new(1);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = SplitMix64::new(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn stream_tags_match_historical_derivations() {
        // These equalities pin the committed artifacts: changing a salt
        // changes every figure that draws from the stream.
        assert_eq!(streams::DATA_PREDICTOR.derive_seed(7), 7 ^ 0xDA7A);
        assert_eq!(streams::CTR_PREDICTOR.derive_seed(7), 7 ^ 0xC7_12);
        assert_eq!(
            streams::WORKLOAD_STREAMING.derive_lane_seed(9, 3),
            9 ^ (3u64 << 40) ^ 0x57EA
        );
        assert_eq!(
            streams::WORKLOAD_GRAPH.derive_lane_seed(9, 2),
            9 ^ (2u64 << 32)
        );
        assert_eq!(
            streams::DATA_PREDICTOR.derive(7),
            SplitMix64::new(7 ^ 0xDA7A)
        );
    }

    #[test]
    fn registry_round_trips_through_json() {
        let mut reg = RngRegistry::new();
        let mut a = streams::DATA_PREDICTOR.derive(1);
        a.next_u64();
        reg.record(streams::DATA_PREDICTOR.name, &a);
        reg.record(streams::CTR_PREDICTOR.name, &SplitMix64::new(u64::MAX));
        let json = reg.to_json();
        let back = RngRegistry::from_json(&json).unwrap();
        assert_eq!(back, reg);
        let mut restored = back.restore(streams::DATA_PREDICTOR.name).unwrap();
        assert_eq!(restored.next_u64(), a.next_u64());
        assert!(back.restore("rl.unknown").is_err());
    }

    #[test]
    fn registry_record_replaces_in_place() {
        let mut reg = RngRegistry::new();
        reg.record("s", &SplitMix64::new(1));
        reg.record("s", &SplitMix64::new(2));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.restore("s").unwrap(), SplitMix64::new(2));
    }

    #[test]
    fn registry_rejects_malformed_json() {
        use crate::json::json;
        assert!(RngRegistry::from_json(&json!([1])).is_err());
        assert!(RngRegistry::from_json(&json!({"s": "x"})).is_err());
        assert!(RngRegistry::from_json(&json!({"s": -1})).is_err());
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(2024);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bucket {i} count {c} far from uniform"
            );
        }
    }
}
