//! Cycle-count arithmetic.
//!
//! All timing in the simulator is expressed in core clock cycles (the paper
//! models a 3 GHz core clock). [`Cycle`] is a saturating wrapper around `u64`
//! so that latency compositions can never silently overflow.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// A point in time or a duration, in core clock cycles.
///
/// Arithmetic saturates: the simulator treats `u64::MAX` as "never".
///
/// # Examples
///
/// ```
/// use cosmos_common::Cycle;
/// let t = Cycle::new(100) + Cycle::new(28);
/// assert_eq!(t.value(), 128);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero / an empty duration.
    pub const ZERO: Cycle = Cycle(0);
    /// The maximum representable time ("never").
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Self(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Saturating difference (`self - other`, or zero when `other` is later).
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_add(rhs.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0.saturating_add(rhs))
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        *self = *self + rhs;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// Saturating subtraction; never panics.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        self.saturating_sub(rhs)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_saturates() {
        assert_eq!(Cycle::MAX + Cycle::new(1), Cycle::MAX);
        assert_eq!(Cycle::new(1) + Cycle::new(2), Cycle::new(3));
    }

    #[test]
    fn sub_saturates_at_zero() {
        assert_eq!(Cycle::new(3) - Cycle::new(10), Cycle::ZERO);
        assert_eq!(Cycle::new(10) - Cycle::new(3), Cycle::new(7));
    }

    #[test]
    fn max_min() {
        let a = Cycle::new(5);
        let b = Cycle::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
    }
}
