//! Ready-time ("event-driven") timing primitives.
//!
//! The simulator never iterates cycles. Every component is modeled as a
//! single-server queue that answers one question — *given a request issued
//! at `now`, when is it done?* — and the answer composes: serial stages add
//! latencies, parallel stages take the `max` of their completion times, and
//! idle gaps are skipped entirely because time only exists at request
//! boundaries. [`ServiceQueue`] is that primitive: a busy-until register
//! plus the `start = max(now, busy_until)` ready-time rule (exactly what a
//! DRAM bank, a fill buffer, or a MAC unit does in hardware).

use crate::cycle::Cycle;

/// The resolved timing of one request through a [`ServiceQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Served {
    /// When service actually began (`max(now, busy_until)`).
    pub start: Cycle,
    /// When service completed (`start + service`).
    pub done: Cycle,
    /// Cycles the request waited behind earlier work (`start - now`).
    pub queued: u64,
}

/// A single-server latency queue: one request at a time, FIFO, with idle
/// time between requests skipped in O(1).
///
/// # Examples
///
/// ```
/// use cosmos_common::timing::ServiceQueue;
/// use cosmos_common::Cycle;
/// let mut q = ServiceQueue::new();
/// let a = q.serve(Cycle::new(100), 50); // idle queue: starts immediately
/// assert_eq!((a.start, a.done, a.queued), (Cycle::new(100), Cycle::new(150), 0));
/// let b = q.serve(Cycle::new(120), 50); // busy: waits for `a`
/// assert_eq!((b.start, b.done, b.queued), (Cycle::new(150), Cycle::new(200), 30));
/// let c = q.serve(Cycle::new(10_000), 50); // idle burst: skipped, no catch-up
/// assert_eq!((c.start, c.queued), (Cycle::new(10_000), 0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceQueue {
    busy_until: Cycle,
}

impl ServiceQueue {
    /// An idle queue.
    pub const fn new() -> Self {
        Self {
            busy_until: Cycle::ZERO,
        }
    }

    /// When the server frees up (`ZERO` if it never served).
    pub const fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Rebuilds a queue from a saved busy-until time (snapshot restore).
    pub const fn resume(busy_until: Cycle) -> Self {
        Self { busy_until }
    }

    /// Serves a request issued at `now` taking `service` cycles; the queue
    /// becomes busy until the returned completion time.
    // cosmos-lint: hot
    #[inline]
    pub fn serve(&mut self, now: Cycle, service: u64) -> Served {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        Served {
            start,
            done,
            queued: (start - now).value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_starts_immediately() {
        let mut q = ServiceQueue::new();
        let s = q.serve(Cycle::new(7), 3);
        assert_eq!(s.start, Cycle::new(7));
        assert_eq!(s.done, Cycle::new(10));
        assert_eq!(s.queued, 0);
    }

    #[test]
    fn back_to_back_requests_queue_fifo() {
        let mut q = ServiceQueue::new();
        q.serve(Cycle::new(0), 100);
        let s = q.serve(Cycle::new(1), 100);
        assert_eq!(s.start, Cycle::new(100));
        assert_eq!(s.queued, 99);
        assert_eq!(s.done, Cycle::new(200));
    }

    #[test]
    fn idle_bursts_are_skipped_without_breaking_monotonicity() {
        // Alternate dense requests with million-cycle idle gaps: completion
        // times must stay strictly monotone and each post-gap request must
        // start exactly at its issue time (the gap costs nothing to model).
        let mut q = ServiceQueue::new();
        let mut last_done = Cycle::ZERO;
        let mut now = Cycle::new(1);
        for burst in 0..50u64 {
            for _ in 0..4 {
                let s = q.serve(now, 10);
                assert!(s.done > last_done, "completion went backwards");
                assert!(s.start >= now, "service started before issue");
                last_done = s.done;
            }
            // The first request after an idle gap sees an empty queue.
            now = last_done + 1_000_000 * (burst + 1);
            let s = q.serve(now, 10);
            assert_eq!(s.start, now, "idle gap must not queue");
            assert_eq!(s.queued, 0);
            last_done = s.done;
            now += 1;
        }
    }
}
