//! Lightweight statistics primitives used by caches, predictors, and the
//! simulator: hit/miss counters, running means, and fixed-bucket histograms.

use core::fmt;

/// A hit/miss (or success/failure) counter pair.
///
/// # Examples
///
/// ```
/// use cosmos_common::stats::HitMiss;
/// let mut hm = HitMiss::new();
/// hm.hit();
/// hm.miss();
/// hm.miss();
/// assert_eq!(hm.total(), 3);
/// assert!((hm.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HitMiss {
    hits: u64,
    misses: u64,
}

impl HitMiss {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Self { hits: 0, misses: 0 }
    }

    /// Records a hit.
    #[inline]
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    #[inline]
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records a hit or a miss depending on `was_hit`.
    #[inline]
    pub fn record(&mut self, was_hit: bool) {
        if was_hit {
            self.hit();
        } else {
            self.miss();
        }
    }

    /// Number of hits recorded.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Total events recorded.
    pub const fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`; `0.0` when empty.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.total())
    }

    /// Miss fraction in `[0, 1]`; `0.0` when empty.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.misses, self.total())
    }

    /// Builds a counter from explicit counts (useful when reconstructing
    /// statistics from estimates).
    pub const fn from_counts(hits: u64, misses: u64) -> Self {
        Self { hits, misses }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Counts accumulated since `baseline`. The subtraction is checked in
    /// every build profile (see [`window_sub`]): a baseline ahead of the
    /// counter means the counter was reset mid-window and any window built
    /// from it would be garbage, so this panics instead of silently
    /// wrapping (debug) or saturating (release).
    pub fn since(&self, baseline: &HitMiss) -> HitMiss {
        HitMiss {
            hits: window_sub(self.hits, baseline.hits),
            misses: window_sub(self.misses, baseline.misses),
        }
    }

    /// Resets both counts to zero.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Encodes the counter for snapshots.
    pub fn to_json(&self) -> crate::json::Value {
        crate::json!({"hits": (self.hits), "misses": (self.misses)})
    }

    /// Decodes a counter produced by [`HitMiss::to_json`].
    pub fn from_json(v: &crate::json::Value) -> Result<Self, String> {
        use crate::json::codec;
        Ok(Self::from_counts(
            codec::u64_field(v, "hits")?,
            codec::u64_field(v, "misses")?,
        ))
    }
}

impl fmt::Display for HitMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% miss)",
            self.hits,
            self.misses,
            self.miss_rate() * 100.0
        )
    }
}

/// Checked stat-window subtraction: `current - baseline` for a monotone
/// counter pair taken from the *same* run.
///
/// The whole `since()` family is built on this. It panics — in release
/// builds too, not just under `debug_assert!` — when `baseline > current`,
/// because that can only mean the counter was reset (or the caller swapped
/// the operands) and the resulting window would be wrapped or silently
/// saturated garbage.
///
/// # Panics
///
/// Panics if `baseline > current`.
///
/// # Examples
///
/// ```
/// use cosmos_common::stats::window_sub;
/// assert_eq!(window_sub(10, 4), 6);
/// ```
#[inline]
#[track_caller]
pub fn window_sub(current: u64, baseline: u64) -> u64 {
    current.checked_sub(baseline).expect(
        "stat-window baseline exceeds the current counter; a window baseline must be an \
         earlier snapshot of the same monotone counter",
    )
}

/// Safe ratio helper: `num / den`, or `0.0` when `den == 0`.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// An online mean/min/max accumulator over `f64` samples.
///
/// # Examples
///
/// ```
/// use cosmos_common::stats::Running;
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] { r.push(x); }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.max(), 3.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Running {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub const fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample; `+inf` when empty.
    pub const fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-inf` when empty.
    pub const fn max(&self) -> f64 {
        self.max
    }
}

/// A histogram over power-of-two buckets of `u64` values (bucket `i` holds
/// values in `[2^i, 2^(i+1))`; bucket 0 holds 0 and 1).
///
/// Useful for reuse-distance and latency distributions.
///
/// # Examples
///
/// ```
/// use cosmos_common::stats::Log2Histogram;
/// let mut h = Log2Histogram::new();
/// h.push(5);
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
        }
    }

    /// Adds a value.
    #[inline]
    pub fn push(&mut self, v: u64) {
        let b = if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Total samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts (bucket `i` ≈ values around `2^i`).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// The value `2^p` such that at least `q` (in `[0,1]`) of samples fall at
    /// or below bucket `p`. Returns 0 for an empty histogram.
    pub fn quantile_bucket(&self, q: f64) -> u32 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                // cosmos-lint: allow(C1): bucket index, bounded by the 64-bucket histogram, not a counter
                return i as u32;
            }
        }
        63
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitmiss_rates() {
        let mut hm = HitMiss::new();
        assert_eq!(hm.hit_rate(), 0.0);
        for _ in 0..3 {
            hm.hit();
        }
        hm.miss();
        assert_eq!(hm.total(), 4);
        assert_eq!(hm.hit_rate(), 0.75);
        assert_eq!(hm.miss_rate(), 0.25);
    }

    #[test]
    fn hitmiss_since_subtracts() {
        let early = HitMiss::from_counts(3, 1);
        let late = HitMiss::from_counts(10, 4);
        assert_eq!(late.since(&early), HitMiss::from_counts(7, 3));
    }

    /// A baseline ahead of the counter means the counter was reset. The
    /// subtraction is checked (not a `debug_assert!`), so this panics in
    /// release builds too — the test runs under both profiles on purpose.
    #[test]
    #[should_panic(expected = "stat-window baseline exceeds the current counter")]
    fn hitmiss_since_rejects_backwards_counter() {
        let early = HitMiss::from_counts(3, 1);
        let late = HitMiss::from_counts(10, 4);
        let _ = early.since(&late);
    }

    #[test]
    fn window_sub_subtracts() {
        assert_eq!(window_sub(10, 10), 0);
        assert_eq!(window_sub(u64::MAX, 1), u64::MAX - 1);
        assert_eq!(window_sub(7, 0), 7);
    }

    #[test]
    #[should_panic(expected = "stat-window baseline exceeds the current counter")]
    fn window_sub_rejects_backwards_counter_in_all_profiles() {
        let _ = window_sub(3, 4);
    }

    #[test]
    fn hitmiss_merge_and_reset() {
        let mut a = HitMiss::new();
        a.hit();
        let mut b = HitMiss::new();
        b.miss();
        a.merge(&b);
        assert_eq!(a.total(), 2);
        a.reset();
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn running_tracks_extremes() {
        let mut r = Running::new();
        for x in [4.0, -1.0, 10.0] {
            r.push(x);
        }
        assert_eq!(r.min(), -1.0);
        assert_eq!(r.max(), 10.0);
        assert!((r.mean() - 13.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Log2Histogram::new();
        h.push(0);
        h.push(1);
        h.push(2);
        h.push(3);
        h.push(1024);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.push(1);
        }
        h.push(1 << 20);
        assert_eq!(h.quantile_bucket(0.5), 0);
        assert_eq!(h.quantile_bucket(1.0), 20);
    }

    #[test]
    fn hitmiss_json_round_trip() {
        let hm = HitMiss::from_counts(5, 2);
        assert_eq!(HitMiss::from_json(&hm.to_json()).unwrap(), hm);
        let err = HitMiss::from_json(&crate::json!({"hits": 1})).unwrap_err();
        assert!(err.contains("misses"), "error names the field: {err}");
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
    }
}
