//! Simulation configuration (paper Table 3) and the design variants
//! (paper Table 4).

use cosmos_cache::{PolicyKind, PrefetcherKind};
use cosmos_common::json::{json, Value};
use cosmos_dram::DramConfig;
use cosmos_rl::params::{RewardTable, RlParams};
use cosmos_secure::CounterScheme;
use cosmos_telemetry::Telemetry;

/// The secure-memory designs under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Design {
    /// Non-protected memory: no counters, MACs, or tree.
    Np,
    /// The MorphCtr baseline: CTR cache at the MC, accessed after an LLC
    /// miss, LRU replacement.
    MorphCtr,
    /// EMCC-like: CTR cache accessed after every L1 miss, in parallel with
    /// the L2/LLC/DRAM data path (idealized, as in the paper's §6.2).
    Emcc,
    /// RMCC-like (Wang et al., MICRO 2022): self-reinforcing memoization of
    /// cryptography state — modeled as a post-LLC CTR cache whose
    /// replacement reinforces counters that keep getting re-referenced
    /// (SHiP's signature counters are the closest published analogue of
    /// RMCC's self-reinforcing retention; see DESIGN.md).
    Rmcc,
    /// COSMOS-DP: RL data-location predictor only (early CTR access for
    /// predicted-off-chip requests); LRU CTR cache.
    CosmosDp,
    /// COSMOS-CP: RL CTR-locality predictor + LCR-CTR cache only; CTR
    /// access stays after the LLC miss.
    CosmosCp,
    /// Full COSMOS: both predictors + LCR-CTR cache.
    Cosmos,
}

impl Design {
    /// The four designs of Figures 10/11/14, in plot order.
    pub const fn figure10() -> [Design; 4] {
        [
            Design::MorphCtr,
            Design::CosmosCp,
            Design::CosmosDp,
            Design::Cosmos,
        ]
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Design::Np => "NP",
            Design::MorphCtr => "MorphCtr",
            Design::Emcc => "EMCC",
            Design::Rmcc => "RMCC",
            Design::CosmosDp => "COSMOS-DP",
            Design::CosmosCp => "COSMOS-CP",
            Design::Cosmos => "COSMOS",
        }
    }

    /// Whether the design protects memory (everything except NP).
    pub const fn is_secure(self) -> bool {
        !matches!(self, Design::Np)
    }

    /// Whether the CTR path is tapped at the L1-miss point (early access).
    pub const fn early_ctr_access(self) -> bool {
        matches!(self, Design::Emcc | Design::CosmosDp | Design::Cosmos)
    }

    /// Whether the data-location predictor is active.
    pub const fn has_data_predictor(self) -> bool {
        matches!(self, Design::CosmosDp | Design::Cosmos)
    }

    /// Whether the CTR-locality predictor and LCR cache are active.
    pub const fn has_locality_predictor(self) -> bool {
        matches!(self, Design::CosmosCp | Design::Cosmos)
    }
}

impl core::fmt::Display for Design {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The CTR-cache line→set mapping family (DESIGN.md §16). The keyed
/// variants are the occupancy-channel defenses: they derive their
/// concrete key from the simulation seed at build time
/// ([`CtrIndex::to_cache`]), so two runs with the same seed place lines
/// identically while an attacker without the key cannot predict the
/// mapping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CtrIndex {
    /// Low-order-bits modulo indexing (the historical default).
    #[default]
    Modulo,
    /// Keyed-randomized indexing: one seeded permutation for all ways.
    Random,
    /// Skewed-associative indexing: an independent keyed hash per way.
    Skewed,
}

impl CtrIndex {
    /// Display/report name, matching `cosmos_cache::IndexKind::name`.
    pub const fn name(self) -> &'static str {
        match self {
            CtrIndex::Modulo => "modulo",
            CtrIndex::Random => "random",
            CtrIndex::Skewed => "skewed",
        }
    }

    /// The concrete cache-layer index function for a simulation seed.
    pub fn to_cache(self, seed: u64) -> cosmos_cache::IndexKind {
        let key = cosmos_common::rng::streams::CTR_INDEX_KEY.derive_seed(seed);
        match self {
            CtrIndex::Modulo => cosmos_cache::IndexKind::Modulo,
            CtrIndex::Random => cosmos_cache::IndexKind::Random { key },
            CtrIndex::Skewed => cosmos_cache::IndexKind::Skewed { key },
        }
    }
}

/// One cache level's geometry and access latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheLevelConfig {
    /// The level as a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "size_bytes": self.size_bytes,
            "ways": self.ways,
            "latency": self.latency,
        })
    }
}

/// Full simulation configuration (paper Table 3 defaults).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The design variant to simulate.
    pub design: Design,
    /// Number of cores (L1/L2 are per-core).
    pub cores: usize,
    /// L1 data cache (per core): 32 KB, 2-way, 2 cycles.
    pub l1: CacheLevelConfig,
    /// L2 cache (per core): 1 MB, 8-way, 20 cycles.
    pub l2: CacheLevelConfig,
    /// Shared LLC: 8 MB, 16-way, 128 cycles.
    pub llc: CacheLevelConfig,
    /// CTR cache in the MC. The baseline uses 512 KB LRU; COSMOS variants
    /// with the locality predictor use a 128 KB LCR cache (paper §5).
    pub ctr_cache: CacheLevelConfig,
    /// CTR cache replacement policy (LRU baseline, LCR for COSMOS-CP/full).
    pub ctr_policy: PolicyKind,
    /// CTR cache line→set mapping (modulo baseline; keyed randomized or
    /// skewed-associative as occupancy-channel defenses, DESIGN.md §16).
    pub ctr_index: CtrIndex,
    /// Optional prefetcher on the CTR cache (Figure-5 study only).
    pub ctr_prefetcher: PrefetcherKind,
    /// Merkle-tree metadata cache in the MC.
    pub mt_cache: CacheLevelConfig,
    /// AES (OTP) latency in cycles.
    pub aes_latency: u64,
    /// MAC authentication latency in cycles.
    pub auth_latency: u64,
    /// Major/minor counter combination latency (MorphCtr, 1 cycle).
    pub ctr_combine_latency: u64,
    /// Counter scheme.
    pub scheme: CounterScheme,
    /// Protected-region size (sets the Merkle-tree depth); 32 GB default.
    pub protected_bytes: u64,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Data-location predictor hyperparameters.
    pub data_rl: RlParams,
    /// CTR-locality predictor hyperparameters.
    pub ctr_rl: RlParams,
    /// Reward table for both agents.
    pub rewards: RewardTable,
    /// CET entries (Table 2: 8,192).
    pub cet_entries: usize,
    /// CET spatial neighbourhood radius in *counter lines*. Algorithm 1's
    /// ±32 is byte-granular (within one 64 B counter line), i.e. radius 0.
    pub cet_radius: u64,
    /// RNG seed for the predictors' exploration.
    pub seed: u64,
    /// Record a timeline sample every this many accesses (0 = never).
    pub sample_interval: usize,
    /// Tenants expected in the trace (observability hint only: sizes the
    /// per-tenant telemetry heatmap lanes when > 1). Results never depend
    /// on it — per-tenant stat buckets always exist — so, like
    /// `telemetry`, it is excluded from [`SimConfig::to_json`].
    pub tenants: usize,
    /// Observability handle, distributed to every component at build time.
    /// Disabled by default; hooks observe only and never change results.
    pub telemetry: Telemetry,
}

impl SimConfig {
    /// The paper's Table-3 configuration for a given design.
    pub fn paper_default(design: Design) -> Self {
        let use_lcr = design.has_locality_predictor();
        Self {
            design,
            cores: 4,
            l1: CacheLevelConfig {
                size_bytes: 32 * 1024,
                ways: 2,
                latency: 2,
            },
            l2: CacheLevelConfig {
                size_bytes: 1024 * 1024,
                ways: 8,
                latency: 20,
            },
            llc: CacheLevelConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                latency: 128,
            },
            ctr_cache: CacheLevelConfig {
                // Every secure design gets the same 512 KB CTR cache so the
                // comparison isolates the *policy and datapath* changes.
                // The paper instead shrinks COSMOS's cache to 128 KB to pay
                // for its 147 KB of predictor state; `with_paper_ctr_sizes`
                // reproduces that accounting as an ablation.
                size_bytes: 512 * 1024,
                ways: 8,
                latency: 2,
            },
            ctr_policy: if use_lcr {
                PolicyKind::Lcr
            } else if matches!(design, Design::Rmcc) {
                PolicyKind::Ship
            } else {
                PolicyKind::Lru
            },
            ctr_index: CtrIndex::Modulo,
            ctr_prefetcher: PrefetcherKind::None,
            mt_cache: CacheLevelConfig {
                size_bytes: 128 * 1024,
                ways: 8,
                latency: 2,
            },
            aes_latency: 40,
            auth_latency: 40,
            ctr_combine_latency: 1,
            scheme: CounterScheme::MorphCtr,
            protected_bytes: 32 << 30,
            dram: DramConfig::ddr4_2400(),
            data_rl: RlParams::data_defaults(),
            ctr_rl: RlParams::ctr_defaults(),
            rewards: RewardTable::default(),
            cet_entries: 8192,
            cet_radius: 0,
            seed: 0xC05_305,
            sample_interval: 0,
            tenants: 1,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The paper's §5 size accounting: COSMOS variants keep only a 128 KB
    /// CTR cache, compensating for their predictor-state overhead, while
    /// non-COSMOS designs keep 512 KB.
    pub fn with_paper_ctr_sizes(mut self) -> Self {
        if self.design.has_data_predictor() || self.design.has_locality_predictor() {
            self.ctr_cache.size_bytes = 128 * 1024;
        }
        self
    }

    /// An 8-core scaling configuration (paper Figure 15): 16 MB LLC.
    pub fn eight_core(design: Design) -> Self {
        let mut c = Self::paper_default(design);
        c.cores = 8;
        c.llc.size_bytes = 16 * 1024 * 1024;
        c
    }

    /// The plain-data configuration fields as a JSON object (policy,
    /// scheme, DRAM, and RL sub-configs are reported elsewhere).
    pub fn to_json(&self) -> Value {
        json!({
            "design": self.design.name(),
            "cores": self.cores,
            "l1": self.l1.to_json(),
            "l2": self.l2.to_json(),
            "llc": self.llc.to_json(),
            "ctr_cache": self.ctr_cache.to_json(),
            "ctr_index": self.ctr_index.name(),
            "mt_cache": self.mt_cache.to_json(),
            "aes_latency": self.aes_latency,
            "auth_latency": self.auth_latency,
            "ctr_combine_latency": self.ctr_combine_latency,
            "protected_bytes": self.protected_bytes,
            "cet_entries": self.cet_entries,
            "cet_radius": self.cet_radius,
            "seed": self.seed,
            "sample_interval": self.sample_interval,
        })
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero cores, non-secure design
    /// with RL predictors, invalid RL parameters, …).
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(
            !matches!(self.ctr_index, CtrIndex::Skewed)
                || matches!(self.ctr_policy, PolicyKind::Lru | PolicyKind::Lcr),
            "skewed CTR indexing supports only the inline LRU/LCR policies"
        );
        self.data_rl.validate();
        self.ctr_rl.validate();
        assert!(self.cet_entries > 0, "CET must have entries");
        assert!(
            self.protected_bytes > 0,
            "protected region must be non-empty"
        );
        self.dram.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_flags() {
        assert!(!Design::Np.is_secure());
        assert!(Design::MorphCtr.is_secure());
        assert!(!Design::MorphCtr.early_ctr_access());
        assert!(Design::Emcc.early_ctr_access());
        assert!(!Design::Emcc.has_data_predictor());
        assert!(Design::CosmosDp.has_data_predictor());
        assert!(!Design::CosmosDp.has_locality_predictor());
        assert!(Design::CosmosCp.has_locality_predictor());
        assert!(!Design::CosmosCp.early_ctr_access());
        assert!(Design::Cosmos.has_data_predictor());
        assert!(Design::Cosmos.has_locality_predictor());
        assert!(Design::Cosmos.early_ctr_access());
    }

    #[test]
    fn defaults_match_table3() {
        let c = SimConfig::paper_default(Design::MorphCtr);
        c.validate();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.latency, 2);
        assert_eq!(c.l2.size_bytes, 1 << 20);
        assert_eq!(c.l2.latency, 20);
        assert_eq!(c.llc.size_bytes, 8 << 20);
        assert_eq!(c.llc.latency, 128);
        assert_eq!(c.ctr_cache.size_bytes, 512 * 1024);
        assert_eq!(c.aes_latency, 40);
        assert_eq!(c.auth_latency, 40);
        assert_eq!(c.cet_entries, 8192);
    }

    #[test]
    fn cosmos_uses_lcr_policy_and_equal_cache() {
        let c = SimConfig::paper_default(Design::Cosmos);
        assert_eq!(c.ctr_cache.size_bytes, 512 * 1024);
        assert_eq!(c.ctr_policy, PolicyKind::Lcr);
        let dp = SimConfig::paper_default(Design::CosmosDp);
        assert_eq!(dp.ctr_cache.size_bytes, 512 * 1024);
        assert_eq!(dp.ctr_policy, PolicyKind::Lru);
        // The paper's size accounting shrinks COSMOS variants to 128 KB.
        let small = SimConfig::paper_default(Design::Cosmos).with_paper_ctr_sizes();
        assert_eq!(small.ctr_cache.size_bytes, 128 * 1024);
        let emcc = SimConfig::paper_default(Design::Emcc).with_paper_ctr_sizes();
        assert_eq!(emcc.ctr_cache.size_bytes, 512 * 1024);
    }

    #[test]
    fn ctr_index_defaults_to_modulo_and_keys_from_seed() {
        let c = SimConfig::paper_default(Design::MorphCtr);
        assert_eq!(c.ctr_index, CtrIndex::Modulo);
        assert_eq!(
            c.ctr_index.to_cache(c.seed),
            cosmos_cache::IndexKind::Modulo
        );
        match CtrIndex::Random.to_cache(7) {
            cosmos_cache::IndexKind::Random { key } => {
                assert_eq!(
                    key,
                    cosmos_common::rng::streams::CTR_INDEX_KEY.derive_seed(7)
                );
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert_eq!(CtrIndex::Skewed.name(), "skewed");
    }

    #[test]
    #[should_panic(expected = "skewed CTR indexing")]
    fn skewed_index_rejects_boxed_policies() {
        let mut c = SimConfig::paper_default(Design::Rmcc); // SHiP = boxed
        c.ctr_index = CtrIndex::Skewed;
        c.validate();
    }

    #[test]
    fn eight_core_scales_llc() {
        let c = SimConfig::eight_core(Design::Cosmos);
        assert_eq!(c.cores, 8);
        assert_eq!(c.llc.size_bytes, 16 << 20);
    }
}
