//! The memory controller's secure path: CTR cache, Merkle-tree metadata
//! cache, counter store, and MAC traffic accounting.
//!
//! Timing follows the paper's model:
//!
//! - a CTR cache hit costs the cache latency + 1-cycle counter combination
//!   + 40-cycle AES (the OTP can then decrypt the arriving data);
//! - a CTR cache miss adds a counter DRAM trip and the Merkle verification
//!   walk: each tree level is looked up in the MT metadata cache, and the
//!   walk stops at the first cached (already-verified) ancestor — misses
//!   are fetched from DRAM in parallel; the hash checks themselves overlap
//!   the OTP AES (paper §5);
//! - writes (LLC writebacks) increment the counter (possibly re-encrypting
//!   the whole block's coverage on overflow), dirty the counter block in
//!   the CTR cache, update the tree path, and emit MAC traffic — all off
//!   the read critical path (background queue slots, paper §5).

use crate::check::SecureObserver;
use crate::config::SimConfig;
use crate::stats::{TenantCtrStats, TrafficBreakdown, MAX_TENANTS};
use cosmos_cache::{Cache, CacheConfig, LocalityHint, Prefetcher};
use cosmos_common::{Cycle, LineAddr};
use cosmos_dram::Dram;
use cosmos_rl::{CtrLocalityPredictor, Locality};
use cosmos_secure::{CounterScheme, CounterStore, IncrementOutcome, MetadataLayout};
use cosmos_telemetry::recorder::{AccessInfo, EvictInfo, RlDecisionInfo};
use cosmos_telemetry::Telemetry;

/// Result of a CTR read on the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtrReadOutcome {
    /// Cycle at which the OTP is ready (CTR resolved + AES done).
    pub otp_ready: Cycle,
    /// Whether the CTR cache hit.
    pub ctr_hit: bool,
}

/// The secure engine owned by the memory controller.
pub struct SecurePath {
    ctr_cache: Cache,
    mt_cache: Cache,
    prefetcher: Option<Box<dyn Prefetcher>>,
    // Reusable prefetch-candidate buffer: run_prefetcher clears and
    // refills it every access instead of allocating.
    pf_scratch: Vec<LineAddr>,
    counters: CounterStore,
    layout: MetadataLayout,
    locality: Option<CtrLocalityPredictor>,
    ctr_latency: u64,
    combine_latency: u64,
    aes_latency: u64,
    mac_read_counter: u64,
    mac_write_counter: u64,
    overflows: u64,
    // Pure-output correctness hook (see crate::check); never affects
    // timing, replacement, or statistics.
    observer: Option<Box<dyn SecureObserver>>,
    // Observability: per-set CTR heatmap + sampled events (see
    // cosmos-telemetry). Like the observer, strictly pure-output.
    telemetry: Telemetry,
    // The RL decision made for the most recent CTR-cache access (None for
    // designs without a predictor). classify() runs immediately before
    // each demand access, so when that access evicts a line this is the
    // decision that chose the victim — it rides along on the CtrEvict
    // event so cosmos-explain can attribute the eviction. Pure-output.
    last_decision: Option<RlDecisionInfo>,
    // Tenant issuing the access currently being processed (set by the
    // simulator per access, already folded mod MAX_TENANTS) and the
    // per-tenant CTR attribution it drives. Pure accounting: replacement
    // and timing never read the tenant.
    tenant: u8,
    tenant_ctr: [TenantCtrStats; MAX_TENANTS],
}

impl SecurePath {
    /// Builds the secure path for `config`.
    pub fn new(config: &SimConfig) -> Self {
        let locality = config.design.has_locality_predictor().then(|| {
            CtrLocalityPredictor::with_rewards(
                config.ctr_rl,
                config.rewards.ctr,
                config.cet_entries,
                config.cet_radius,
                cosmos_common::rng::streams::CTR_PREDICTOR.derive_seed(config.seed),
            )
        });
        let mut ctr_cache = Cache::new(
            CacheConfig::new(config.ctr_cache.size_bytes, config.ctr_cache.ways)
                .with_index(config.ctr_index.to_cache(config.seed)),
            config.ctr_policy,
        );
        let mut mt_cache = Cache::new(
            CacheConfig::new(config.mt_cache.size_bytes, config.mt_cache.ways),
            cosmos_cache::PolicyKind::Lru,
        );
        let mut telemetry = config.telemetry.clone();
        ctr_cache.attach_telemetry(&telemetry, "ctr");
        mt_cache.attach_telemetry(&telemetry, "mt");
        telemetry.ctr_heatmap_init(ctr_cache.config().num_sets());
        if config.tenants > 1 {
            telemetry.ctr_tenant_heatmaps_init(
                ctr_cache.config().num_sets(),
                config.tenants.min(MAX_TENANTS),
            );
        }
        let mut locality = locality;
        if let Some(p) = &mut locality {
            p.set_telemetry(telemetry.clone());
        }
        Self {
            ctr_cache,
            mt_cache,
            prefetcher: config.ctr_prefetcher.build(),
            pf_scratch: Vec::with_capacity(8),
            counters: CounterStore::new(config.scheme),
            layout: MetadataLayout::new(config.protected_bytes, config.scheme),
            locality,
            ctr_latency: config.ctr_cache.latency,
            combine_latency: config.ctr_combine_latency,
            aes_latency: config.aes_latency,
            mac_read_counter: 0,
            mac_write_counter: 0,
            overflows: 0,
            observer: None,
            telemetry,
            last_decision: None,
            tenant: 0,
            tenant_ctr: [TenantCtrStats::default(); MAX_TENANTS],
        }
    }

    /// Sets the tenant the next accesses are attributed to (folded mod
    /// [`MAX_TENANTS`]). The simulator calls this once per trace access;
    /// tenant-oblivious traces always attribute to bucket 0.
    #[inline]
    pub fn set_tenant(&mut self, tenant: u8) {
        self.tenant = tenant % MAX_TENANTS as u8;
    }

    /// Per-tenant CTR-cache attribution accumulated so far.
    pub fn tenant_stats(&self) -> &[TenantCtrStats; MAX_TENANTS] {
        &self.tenant_ctr
    }

    /// Attaches a correctness observer (see [`crate::check`]). Replaces
    /// any previous observer.
    pub fn set_observer(&mut self, observer: Box<dyn SecureObserver>) {
        self.observer = Some(observer);
    }

    /// The CTR cache (stats access).
    pub fn ctr_cache(&self) -> &Cache {
        &self.ctr_cache
    }

    /// The MT metadata cache (stats access).
    pub fn mt_cache(&self) -> &Cache {
        &self.mt_cache
    }

    /// The locality predictor, when the design has one.
    pub fn locality(&self) -> Option<&CtrLocalityPredictor> {
        self.locality.as_ref()
    }

    /// The functional counter store (checker access).
    pub fn counters(&self) -> &CounterStore {
        &self.counters
    }

    /// The metadata address layout (checker access).
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// Counter overflow events so far.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// The counter scheme in use.
    pub fn scheme(&self) -> CounterScheme {
        self.counters.scheme()
    }

    /// Serializes the secure path's state — both metadata caches, the
    /// counter store, the locality predictor (when present), and the
    /// MAC/overflow counters — for snapshots. The metadata layout and
    /// latencies are pure functions of the config and are not stored;
    /// observers and telemetry are reattached by the caller, not saved.
    ///
    /// Rejects configurations with a CTR prefetcher attached (prefetcher
    /// objects carry unserializable state behind the trait object).
    pub fn save_state(&self) -> Result<cosmos_common::json::Value, String> {
        if self.prefetcher.is_some() {
            return Err("snapshot unsupported with a CTR prefetcher attached".into());
        }
        let locality = match &self.locality {
            Some(p) => p.save_state(),
            None => cosmos_common::json::Value::Null,
        };
        Ok(cosmos_common::json!({
            "ctr_cache": (self.ctr_cache.save_state()?),
            "mt_cache": (self.mt_cache.save_state()?),
            "counters": (self.counters.save_state()),
            "locality": (locality),
            "mac_read_counter": (self.mac_read_counter),
            "mac_write_counter": (self.mac_write_counter),
            "overflows": (self.overflows),
            "tenant_ctr": (cosmos_common::json::Value::Array(
                self.tenant_ctr.iter().map(TenantCtrStats::to_json).collect(),
            )),
        }))
    }

    /// Restores state produced by [`SecurePath::save_state`] into a path
    /// built from the same config. Rejects predictor presence mismatches
    /// (a snapshot from a locality design cannot restore into one without).
    pub fn load_state(&mut self, v: &cosmos_common::json::Value) -> Result<(), String> {
        use cosmos_common::json::codec;
        if self.prefetcher.is_some() {
            return Err("snapshot unsupported with a CTR prefetcher attached".into());
        }
        self.ctr_cache.load_state(codec::field(v, "ctr_cache")?)?;
        self.mt_cache.load_state(codec::field(v, "mt_cache")?)?;
        self.counters.load_state(codec::field(v, "counters")?)?;
        let locality = codec::field(v, "locality")?;
        match (
            self.locality.as_mut(),
            matches!(locality, cosmos_common::json::Value::Null),
        ) {
            (Some(p), false) => p.load_state(locality)?,
            (None, true) => {}
            (Some(_), true) => {
                return Err("snapshot has no locality predictor but this design expects one".into())
            }
            (None, false) => {
                return Err("snapshot carries a locality predictor but this design has none".into())
            }
        }
        self.mac_read_counter = codec::u64_field(v, "mac_read_counter")?;
        self.mac_write_counter = codec::u64_field(v, "mac_write_counter")?;
        self.overflows = codec::u64_field(v, "overflows")?;
        let tenant_vec: Vec<TenantCtrStats> = codec::field(v, "tenant_ctr")?
            .as_array()
            .ok_or_else(|| "field `tenant_ctr`: expected an array".to_string())?
            .iter()
            .map(TenantCtrStats::from_json)
            .collect::<Result<_, _>>()?;
        self.tenant_ctr = tenant_vec
            .try_into()
            .map_err(|_| format!("field `tenant_ctr`: expected {MAX_TENANTS} buckets"))?;
        Ok(())
    }

    /// Reads the CTR covering `data_line` on the critical path, starting at
    /// `start`. Returns when the OTP is ready.
    // cosmos-lint: hot
    pub fn ctr_read(
        &mut self,
        data_line: LineAddr,
        start: Cycle,
        dram: &mut Dram,
        traffic: &mut TrafficBreakdown,
    ) -> CtrReadOutcome {
        self.ctr_read_inner(data_line, start, dram, traffic, false)
    }

    /// [`SecurePath::ctr_read`] for the re-issue after a killed speculative
    /// decryption: identical timing and cache behaviour, but the sampled
    /// CTR-access event carries the spec-kill flag so cosmos-explain can
    /// attribute the miss to misspeculation rather than the cache.
    pub fn ctr_read_after_kill(
        &mut self,
        data_line: LineAddr,
        start: Cycle,
        dram: &mut Dram,
        traffic: &mut TrafficBreakdown,
    ) -> CtrReadOutcome {
        self.ctr_read_inner(data_line, start, dram, traffic, true)
    }

    // cosmos-lint: hot
    fn ctr_read_inner(
        &mut self,
        data_line: LineAddr,
        start: Cycle,
        dram: &mut Dram,
        traffic: &mut TrafficBreakdown,
        spec_kill: bool,
    ) -> CtrReadOutcome {
        let ctr_line = self.layout.ctr_line_of(data_line);
        let hint = self.classify(ctr_line);
        let res = self.ctr_cache.access(ctr_line, false, hint);
        if let Some(obs) = self.observer.as_mut() {
            obs.ctr_access(ctr_line, false, res.hit, res.evicted);
        }
        self.telemetry_ctr_access(ctr_line, false, spec_kill, &res);
        if let Some(ev) = res.evicted {
            if ev.dirty {
                traffic.ctr_writes += 1;
            }
        }
        let after_lookup = start + self.ctr_latency;
        let otp_ready = if res.hit {
            after_lookup + self.combine_latency + self.aes_latency
        } else {
            traffic.ctr_reads += 1;
            let ctr_done = dram.access(ctr_line, after_lookup, false);
            let mt_done = self.mt_walk(ctr_line, after_lookup, dram, traffic);
            ctr_done.max(mt_done) + self.combine_latency + self.aes_latency
        };
        let bucket = &mut self.tenant_ctr[self.tenant as usize];
        if res.hit {
            bucket.hits += 1;
        } else {
            bucket.misses += 1;
            bucket.miss_latency += (otp_ready - start).value();
        }
        self.run_prefetcher(ctr_line, res.hit, traffic);
        CtrReadOutcome {
            otp_ready,
            ctr_hit: res.hit,
        }
    }

    /// Handles the secure side of a data writeback (off the critical path):
    /// counter increment (+ re-encryption on overflow), CTR cache
    /// read-modify-write, tree path update, MAC write traffic.
    // cosmos-lint: hot
    pub fn ctr_write(
        &mut self,
        data_line: LineAddr,
        now: Cycle,
        dram: &mut Dram,
        traffic: &mut TrafficBreakdown,
    ) {
        match self.counters.increment(data_line) {
            IncrementOutcome::Overflow { reencrypt } => {
                self.overflows += 1;
                traffic.reencrypt_writes += reencrypt.len() as u64;
            }
            IncrementOutcome::Ok | IncrementOutcome::Morphed { .. } => {}
        }
        if let Some(obs) = self.observer.as_mut() {
            obs.ctr_increment(data_line);
        }
        let ctr_line = self.layout.ctr_line_of(data_line);
        let hint = self.classify(ctr_line);
        let res = self.ctr_cache.access(ctr_line, true, hint);
        if let Some(obs) = self.observer.as_mut() {
            obs.ctr_access(ctr_line, true, res.hit, res.evicted);
        }
        self.telemetry_ctr_access(ctr_line, true, false, &res);
        let bucket = &mut self.tenant_ctr[self.tenant as usize];
        if res.hit {
            bucket.hits += 1;
        } else {
            bucket.misses += 1;
        }
        if let Some(ev) = res.evicted {
            if ev.dirty {
                traffic.ctr_writes += 1;
            }
        }
        if !res.hit {
            // The counter block must be fetched (and verified) before the
            // in-place increment.
            traffic.ctr_reads += 1;
            dram.access(ctr_line, now, false);
            self.mt_walk(ctr_line, now, dram, traffic);
        }
        // Tree path update: dirty the path nodes in the metadata cache.
        for node in self.layout.mt_path_iter(ctr_line) {
            let r = self.mt_cache.access(node, true, None);
            if let Some(obs) = self.observer.as_mut() {
                obs.mt_access(node, true, r.hit, r.evicted);
            }
            if let Some(ev) = r.evicted {
                if ev.dirty {
                    traffic.mt_writes += 1;
                }
            }
        }
        // One MAC line write per 8 data writes (8 MACs per line).
        self.mac_write_counter += 1;
        if self.mac_write_counter.is_multiple_of(8) {
            traffic.mac_writes += 1;
        }
    }

    /// Accounts the MAC read accompanying a data DRAM read (1 per 8).
    pub fn mac_read(&mut self, traffic: &mut TrafficBreakdown) {
        self.mac_read_counter += 1;
        if self.mac_read_counter.is_multiple_of(8) {
            traffic.mac_reads += 1;
        }
    }

    /// Walks the Merkle path of `ctr_line` bottom-up through the metadata
    /// cache, fetching missed nodes from DRAM in parallel; returns when the
    /// slowest fetched node arrives. Stops at the first cached
    /// (already-verified) ancestor.
    // cosmos-lint: hot
    fn mt_walk(
        &mut self,
        ctr_line: LineAddr,
        start: Cycle,
        dram: &mut Dram,
        traffic: &mut TrafficBreakdown,
    ) -> Cycle {
        let mut done = start;
        let mut depth = 0u32;
        let mut fetched = 0u32;
        for node in self.layout.mt_path_iter(ctr_line) {
            depth += 1;
            let r = self.mt_cache.access(node, false, None);
            if let Some(obs) = self.observer.as_mut() {
                obs.mt_access(node, false, r.hit, r.evicted);
            }
            if let Some(ev) = r.evicted {
                if ev.dirty {
                    traffic.mt_writes += 1;
                }
            }
            if r.hit {
                break; // verified ancestor found
            }
            fetched += 1;
            traffic.mt_reads += 1;
            done = done.max(dram.access(node, start, false));
        }
        self.telemetry.merkle_walk(depth, fetched);
        done
    }

    /// Telemetry view of one demand CTR-cache access: per-set heatmap and
    /// sampled flight-recorder events. A miss that evicted nothing filled
    /// a previously invalid way, growing the set's occupancy (the CTR
    /// cache is never invalidated, so this tracks exactly).
    ///
    /// Both events are stamped with the cache's access clock *after* the
    /// access, so a CtrEvict shares its `at` with the CtrAccess that caused
    /// it — the join key cosmos-explain uses to pair them — and the evict
    /// carries the RL decision that ranked the victim (see
    /// [`SecurePath::last_decision`]).
    fn telemetry_ctr_access(
        &self,
        ctr_line: LineAddr,
        write: bool,
        spec_kill: bool,
        res: &cosmos_cache::AccessResult,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let set = self.ctr_cache.config().set_of(ctr_line.index()) as u32;
        let at = self.ctr_cache.access_clock();
        self.telemetry.ctr_access(
            AccessInfo {
                set,
                line: ctr_line.index(),
                at,
                hit: res.hit,
                write,
                spec_kill,
                tenant: self.tenant,
            },
            !res.hit && res.evicted.is_none(),
        );
        if let Some(ev) = res.evicted {
            self.telemetry.ctr_evict(EvictInfo {
                set,
                victim_line: ev.line.index(),
                dirty: ev.dirty,
                fill_at: ev.fill_at,
                last_touch_at: ev.last_touch_at,
                at,
                lru_deviated: ev.lru_deviated,
                rl: self.last_decision,
            });
        }
    }

    fn classify(&mut self, ctr_line: LineAddr) -> Option<LocalityHint> {
        self.last_decision = None;
        let p = self.locality.as_mut()?;
        let d = p.classify(ctr_line);
        self.last_decision = Some(RlDecisionInfo {
            id: d.id,
            q_good: d.q_good,
            q_bad: d.q_bad,
            reward: d.reward,
        });
        Some(LocalityHint {
            good: d.locality == Locality::Good,
            score: d.score,
        })
    }

    fn run_prefetcher(&mut self, ctr_line: LineAddr, hit: bool, traffic: &mut TrafficBreakdown) {
        // Take the prefetcher (and the candidate scratch buffer) out to
        // satisfy the borrow checker, then process its candidates against
        // the CTR cache. The buffer is reused across accesses so this path
        // stays allocation-free after warmup.
        if let Some(mut pf) = self.prefetcher.take() {
            let mut cands = std::mem::take(&mut self.pf_scratch);
            cands.clear();
            pf.on_access(ctr_line, hit, &mut cands);
            for &cand in &cands {
                // Only prefetch within the CTR region.
                if !self.layout.is_ctr(cand) {
                    continue;
                }
                if self.ctr_cache.contains(cand) {
                    continue;
                }
                // A prefetched CTR still needs fetching + integrity checks
                // (the paper's point about wasted prefetch traffic).
                traffic.ctr_reads += 1;
                let ev = self.ctr_cache.prefetch_fill(cand, None);
                if let Some(obs) = self.observer.as_mut() {
                    obs.ctr_prefetch(cand, ev);
                }
                if let Some(ev) = ev {
                    if ev.dirty {
                        traffic.ctr_writes += 1;
                    }
                    // Prefetch-induced evictions victimize lines too;
                    // report them so miss attribution sees every eviction.
                    // No demand access pairs with this `at`, and no RL
                    // decision ranked the victim (rl: None).
                    if self.telemetry.is_enabled() {
                        self.telemetry.ctr_evict(EvictInfo {
                            set: self.ctr_cache.config().set_of(cand.index()) as u32,
                            victim_line: ev.line.index(),
                            dirty: ev.dirty,
                            fill_at: ev.fill_at,
                            last_touch_at: ev.last_touch_at,
                            at: self.ctr_cache.access_clock(),
                            lru_deviated: ev.lru_deviated,
                            rl: None,
                        });
                    }
                }
                // Integrity verification for the prefetched counter.
                for node in self.layout.mt_path_iter(cand) {
                    let r = self.mt_cache.access(node, false, None);
                    if let Some(obs) = self.observer.as_mut() {
                        obs.mt_access(node, false, r.hit, r.evicted);
                    }
                    if r.hit {
                        break;
                    }
                    traffic.mt_reads += 1;
                }
            }
            self.pf_scratch = cands;
            self.prefetcher = Some(pf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Design, SimConfig};
    use cosmos_dram::DramConfig;

    fn setup(design: Design) -> (SecurePath, Dram, TrafficBreakdown) {
        let mut cfg = SimConfig::paper_default(design);
        cfg.ctr_cache.size_bytes = 8192; // tiny for tests
        cfg.mt_cache.size_bytes = 4096;
        cfg.protected_bytes = 1 << 30;
        (
            SecurePath::new(&cfg),
            Dram::new(DramConfig::ddr4_2400()),
            TrafficBreakdown::default(),
        )
    }

    #[test]
    fn ctr_miss_then_hit() {
        let (mut sp, mut dram, mut tr) = setup(Design::MorphCtr);
        let line = LineAddr::new(100);
        let r1 = sp.ctr_read(line, Cycle::new(0), &mut dram, &mut tr);
        assert!(!r1.ctr_hit);
        assert_eq!(tr.ctr_reads, 1);
        assert!(tr.mt_reads > 0, "first miss must verify the tree");
        let r2 = sp.ctr_read(line, Cycle::new(1000), &mut dram, &mut tr);
        assert!(r2.ctr_hit);
        assert_eq!(tr.ctr_reads, 1, "hit must not refetch");
    }

    #[test]
    fn hit_latency_is_cache_plus_aes() {
        let (mut sp, mut dram, mut tr) = setup(Design::MorphCtr);
        let line = LineAddr::new(5);
        sp.ctr_read(line, Cycle::new(0), &mut dram, &mut tr);
        let r = sp.ctr_read(line, Cycle::new(500), &mut dram, &mut tr);
        // ctr_latency(2) + combine(1) + aes(40)
        assert_eq!(r.otp_ready, Cycle::new(500 + 2 + 1 + 40));
    }

    #[test]
    fn same_block_shares_counter_line() {
        let (mut sp, mut dram, mut tr) = setup(Design::MorphCtr);
        sp.ctr_read(LineAddr::new(0), Cycle::new(0), &mut dram, &mut tr);
        // Line 100 shares the 1:128 counter block with line 0.
        let r = sp.ctr_read(LineAddr::new(100), Cycle::new(500), &mut dram, &mut tr);
        assert!(r.ctr_hit);
    }

    #[test]
    fn writes_increment_counters_and_emit_mac_traffic() {
        let (mut sp, mut dram, mut tr) = setup(Design::MorphCtr);
        for i in 0..16u64 {
            sp.ctr_write(LineAddr::new(i * 200), Cycle::new(0), &mut dram, &mut tr);
        }
        assert_eq!(tr.mac_writes, 2, "1 MAC line write per 8 data writes");
        assert!(tr.ctr_reads > 0, "write misses fetch counter blocks");
    }

    #[test]
    fn overflow_generates_reencryption_traffic() {
        let mut cfg = SimConfig::paper_default(Design::MorphCtr);
        cfg.scheme = CounterScheme::Split; // overflows after 128 writes
        cfg.protected_bytes = 1 << 30;
        let mut sp = SecurePath::new(&cfg);
        let mut dram = Dram::new(DramConfig::ddr4_2400());
        let mut tr = TrafficBreakdown::default();
        for _ in 0..200 {
            sp.ctr_write(LineAddr::new(7), Cycle::new(0), &mut dram, &mut tr);
        }
        assert!(sp.overflows() >= 1);
        assert_eq!(tr.reencrypt_writes, sp.overflows() * 64);
    }

    #[test]
    fn locality_predictor_attached_only_for_cp_designs() {
        let (sp, _, _) = setup(Design::Cosmos);
        assert!(sp.locality().is_some());
        let (sp, _, _) = setup(Design::CosmosDp);
        assert!(sp.locality().is_none());
    }

    #[test]
    fn mt_walk_caches_verified_ancestors() {
        let (mut sp, mut dram, mut tr) = setup(Design::MorphCtr);
        sp.ctr_read(LineAddr::new(0), Cycle::new(0), &mut dram, &mut tr);
        let first_mt = tr.mt_reads;
        assert!(first_mt > 0);
        // A different counter block nearby shares upper tree levels: its
        // walk should stop early at the cached ancestor.
        sp.ctr_read(LineAddr::new(128), Cycle::new(1000), &mut dram, &mut tr);
        let second_mt = tr.mt_reads - first_mt;
        assert!(
            second_mt < first_mt,
            "shared ancestors must be cached ({first_mt} then {second_mt})"
        );
    }

    #[test]
    fn mac_reads_are_one_in_eight() {
        let (mut sp, _, mut tr) = setup(Design::MorphCtr);
        for _ in 0..24 {
            sp.mac_read(&mut tr);
        }
        assert_eq!(tr.mac_reads, 3);
    }
}
