//! Weighted reconstruction of full-trace statistics from sampled interval
//! measurements.
//!
//! Interval sampling (the `cosmos-sampling` crate) simulates only a
//! representative subset of a trace. Each representative's measured
//! [`SimStats`] window stands in for every interval of its cluster, so the
//! full-trace estimate of an additive counter `C` is
//!
//! ```text
//! Ĉ = Σ_reps  C_rep × (cluster_accesses / rep_accesses)
//! ```
//!
//! [`StatsEstimate`] accumulates those weighted contributions in `f64`
//! (one rounding at reconstruction time, not one per sample) and
//! [`StatsEstimate::reconstruct`] rounds the result back into a plain
//! [`SimStats`], so every downstream consumer — tables, JSON emitters,
//! normalization against NP — works unchanged on sampled runs.
//!
//! Derived metrics (IPC, miss rates) are ratios of estimated counters,
//! which is exactly the weighted-rate reconstruction SimPoint-style
//! samplers use.

use crate::stats::{SimStats, TenantCtrStats, TrafficBreakdown, MAX_TENANTS};
use cosmos_cache::CacheStats;
use cosmos_common::stats::HitMiss;
use cosmos_dram::DramStats;
use cosmos_rl::{CtrLocalityStats, DataLocationStats};

fn round(x: f64) -> u64 {
    if x <= 0.0 {
        0
    } else {
        x.round() as u64
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct HmAcc {
    hits: f64,
    misses: f64,
}

impl HmAcc {
    fn add(&mut self, s: &HitMiss, w: f64) {
        self.hits += s.hits() as f64 * w;
        self.misses += s.misses() as f64 * w;
    }

    fn reconstruct(&self) -> HitMiss {
        HitMiss::from_counts(round(self.hits), round(self.misses))
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct CacheAcc {
    demand: HmAcc,
    evictions: f64,
    writebacks: f64,
    prefetch_issued: f64,
    prefetch_useful: f64,
    prefetch_unused: f64,
    prefetch_redundant: f64,
}

impl CacheAcc {
    fn add(&mut self, s: &CacheStats, w: f64) {
        self.demand.add(&s.demand, w);
        self.evictions += s.evictions as f64 * w;
        self.writebacks += s.writebacks as f64 * w;
        self.prefetch_issued += s.prefetch_issued as f64 * w;
        self.prefetch_useful += s.prefetch_useful as f64 * w;
        self.prefetch_unused += s.prefetch_unused as f64 * w;
        self.prefetch_redundant += s.prefetch_redundant as f64 * w;
    }

    fn reconstruct(&self) -> CacheStats {
        CacheStats {
            demand: self.demand.reconstruct(),
            evictions: round(self.evictions),
            writebacks: round(self.writebacks),
            prefetch_issued: round(self.prefetch_issued),
            prefetch_useful: round(self.prefetch_useful),
            prefetch_unused: round(self.prefetch_unused),
            prefetch_redundant: round(self.prefetch_redundant),
        }
    }
}

/// Accumulates weighted per-interval [`SimStats`] windows into a
/// full-trace estimate.
///
/// # Examples
///
/// ```
/// use cosmos_core::estimate::StatsEstimate;
/// use cosmos_core::SimStats;
///
/// let window = SimStats { instructions: 100, cycles: 50, accesses: 10, ..SimStats::default() };
/// let mut est = StatsEstimate::new();
/// // The window stands in for 3× its own length.
/// est.add_weighted(&window, 3.0);
/// let full = est.reconstruct();
/// assert_eq!(full.accesses, 30);
/// assert_eq!(full.instructions, 300);
/// assert!((full.ipc() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct StatsEstimate {
    samples: usize,
    instructions: f64,
    cycles: f64,
    accesses: f64,
    reads: f64,
    writes: f64,
    l1: HmAcc,
    l2: HmAcc,
    llc: HmAcc,
    ctr_cache: CacheAcc,
    mt_cache: CacheAcc,
    dram_reads: f64,
    dram_writes: f64,
    dram_row_hits: f64,
    dram_row_closed: f64,
    dram_row_conflicts: f64,
    dram_queue_cycles: f64,
    traffic: [f64; 10],
    dp_correct_onchip: f64,
    dp_correct_offchip: f64,
    dp_wrong_offchip: f64,
    dp_wrong_onchip: f64,
    cp_predictions: f64,
    cp_predicted_good: f64,
    cp_cet_hits: f64,
    cp_cet_evictions: f64,
    cp_agreements: f64,
    ctr_overflows: f64,
    total_read_latency: f64,
    early_offchip_reads: f64,
    tenant_ctr: [[f64; 3]; MAX_TENANTS],
}

impl StatsEstimate {
    /// An empty estimate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of weighted windows accumulated so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Adds a measured window, scaled by `weight` (the number of accesses
    /// this window represents divided by the accesses it measured).
    pub fn add_weighted(&mut self, s: &SimStats, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "bad sample weight {weight}"
        );
        self.samples += 1;
        self.instructions += s.instructions as f64 * weight;
        self.cycles += s.cycles as f64 * weight;
        self.accesses += s.accesses as f64 * weight;
        self.reads += s.reads as f64 * weight;
        self.writes += s.writes as f64 * weight;
        self.l1.add(&s.l1, weight);
        self.l2.add(&s.l2, weight);
        self.llc.add(&s.llc, weight);
        self.ctr_cache.add(&s.ctr_cache, weight);
        self.mt_cache.add(&s.mt_cache, weight);
        self.dram_reads += s.dram.reads as f64 * weight;
        self.dram_writes += s.dram.writes as f64 * weight;
        self.dram_row_hits += s.dram.row_hits as f64 * weight;
        self.dram_row_closed += s.dram.row_closed as f64 * weight;
        self.dram_row_conflicts += s.dram.row_conflicts as f64 * weight;
        self.dram_queue_cycles += s.dram.queue_cycles as f64 * weight;
        let t = &s.traffic;
        for (acc, v) in self.traffic.iter_mut().zip([
            t.data_reads,
            t.data_writes,
            t.ctr_reads,
            t.ctr_writes,
            t.mt_reads,
            t.mt_writes,
            t.mac_reads,
            t.mac_writes,
            t.reencrypt_writes,
            t.killed_speculative,
        ]) {
            *acc += v as f64 * weight;
        }
        self.dp_correct_onchip += s.data_pred.correct_onchip as f64 * weight;
        self.dp_correct_offchip += s.data_pred.correct_offchip as f64 * weight;
        self.dp_wrong_offchip += s.data_pred.wrong_offchip as f64 * weight;
        self.dp_wrong_onchip += s.data_pred.wrong_onchip as f64 * weight;
        self.cp_predictions += s.ctr_pred.predictions as f64 * weight;
        self.cp_predicted_good += s.ctr_pred.predicted_good as f64 * weight;
        self.cp_cet_hits += s.ctr_pred.cet_hits as f64 * weight;
        self.cp_cet_evictions += s.ctr_pred.cet_evictions as f64 * weight;
        self.cp_agreements += s.ctr_pred.agreements as f64 * weight;
        self.ctr_overflows += s.ctr_overflows as f64 * weight;
        self.total_read_latency += s.total_read_latency as f64 * weight;
        self.early_offchip_reads += s.early_offchip_reads as f64 * weight;
        for (acc, t) in self.tenant_ctr.iter_mut().zip(&s.tenant_ctr) {
            acc[0] += t.hits as f64 * weight;
            acc[1] += t.misses as f64 * weight;
            acc[2] += t.miss_latency as f64 * weight;
        }
    }

    /// Rounds the accumulated estimate into a [`SimStats`]. The timeline is
    /// empty — point-in-time samples cannot be reconstructed from weighted
    /// windows.
    pub fn reconstruct(&self) -> SimStats {
        SimStats {
            instructions: round(self.instructions),
            cycles: round(self.cycles),
            accesses: round(self.accesses),
            reads: round(self.reads),
            writes: round(self.writes),
            l1: self.l1.reconstruct(),
            l2: self.l2.reconstruct(),
            llc: self.llc.reconstruct(),
            ctr_cache: self.ctr_cache.reconstruct(),
            mt_cache: self.mt_cache.reconstruct(),
            dram: DramStats {
                reads: round(self.dram_reads),
                writes: round(self.dram_writes),
                row_hits: round(self.dram_row_hits),
                row_closed: round(self.dram_row_closed),
                row_conflicts: round(self.dram_row_conflicts),
                queue_cycles: round(self.dram_queue_cycles),
            },
            traffic: TrafficBreakdown {
                data_reads: round(self.traffic[0]),
                data_writes: round(self.traffic[1]),
                ctr_reads: round(self.traffic[2]),
                ctr_writes: round(self.traffic[3]),
                mt_reads: round(self.traffic[4]),
                mt_writes: round(self.traffic[5]),
                mac_reads: round(self.traffic[6]),
                mac_writes: round(self.traffic[7]),
                reencrypt_writes: round(self.traffic[8]),
                killed_speculative: round(self.traffic[9]),
            },
            data_pred: DataLocationStats {
                correct_onchip: round(self.dp_correct_onchip),
                correct_offchip: round(self.dp_correct_offchip),
                wrong_offchip: round(self.dp_wrong_offchip),
                wrong_onchip: round(self.dp_wrong_onchip),
            },
            ctr_pred: CtrLocalityStats {
                predictions: round(self.cp_predictions),
                predicted_good: round(self.cp_predicted_good),
                cet_hits: round(self.cp_cet_hits),
                cet_evictions: round(self.cp_cet_evictions),
                agreements: round(self.cp_agreements),
            },
            ctr_overflows: round(self.ctr_overflows),
            total_read_latency: round(self.total_read_latency),
            early_offchip_reads: round(self.early_offchip_reads),
            tenant_ctr: self
                .tenant_ctr
                .map(|[hits, misses, miss_latency]| TenantCtrStats {
                    hits: round(hits),
                    misses: round(misses),
                    miss_latency: round(miss_latency),
                }),
            timeline: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(scale: u64) -> SimStats {
        SimStats {
            instructions: 100 * scale,
            cycles: 50 * scale,
            accesses: 10 * scale,
            reads: 8 * scale,
            writes: 2 * scale,
            l1: HitMiss::from_counts(6 * scale, 4 * scale),
            total_read_latency: 70 * scale,
            ..SimStats::default()
        }
    }

    #[test]
    fn identity_weight_roundtrips() {
        let w = window(3);
        let mut est = StatsEstimate::new();
        est.add_weighted(&w, 1.0);
        let got = est.reconstruct();
        assert_eq!(got.instructions, w.instructions);
        assert_eq!(got.accesses, w.accesses);
        assert_eq!(got.l1, w.l1);
        assert_eq!(got.ipc(), w.ipc());
    }

    #[test]
    fn weights_scale_counters_and_preserve_rates() {
        let mut est = StatsEstimate::new();
        est.add_weighted(&window(1), 4.0);
        est.add_weighted(&window(2), 3.0);
        let got = est.reconstruct();
        // 4×10 + 3×20 accesses.
        assert_eq!(got.accesses, 100);
        assert_eq!(got.instructions, 1000);
        assert_eq!(got.cycles, 500);
        // Both windows have identical rates, so ratios must be exact.
        assert!((got.ipc() - 2.0).abs() < 1e-9);
        assert!((got.l1.miss_rate() - 0.4).abs() < 1e-9);
        assert!((got.avg_read_latency() - 8.75).abs() < 1e-9);
        assert_eq!(est.samples(), 2);
    }

    #[test]
    fn tenant_buckets_scale_with_weight() {
        let mut w = window(1);
        w.tenant_ctr[1] = TenantCtrStats {
            hits: 7,
            misses: 3,
            miss_latency: 90,
        };
        let mut est = StatsEstimate::new();
        est.add_weighted(&w, 4.0);
        let got = est.reconstruct();
        assert_eq!(got.tenant_ctr[0], TenantCtrStats::default());
        assert_eq!(
            got.tenant_ctr[1],
            TenantCtrStats {
                hits: 28,
                misses: 12,
                miss_latency: 360,
            }
        );
    }

    #[test]
    fn zero_weight_contributes_nothing() {
        let mut est = StatsEstimate::new();
        est.add_weighted(&window(5), 0.0);
        let got = est.reconstruct();
        assert_eq!(got.accesses, 0);
        assert_eq!(got.cycles, 0);
    }

    #[test]
    #[should_panic(expected = "bad sample weight")]
    fn negative_weight_panics() {
        StatsEstimate::new().add_weighted(&window(1), -1.0);
    }
}
