//! The multi-core data-cache hierarchy: per-core L1 and L2, shared LLC.
//!
//! Write-back, write-allocate at every level. Dirty evictions cascade
//! downward (L1 → L2 → LLC); dirty LLC evictions surface as writebacks for
//! the memory controller (and, in secure designs, the secure write path).

use crate::config::SimConfig;
use cosmos_cache::{Cache, CacheConfig, PolicyKind};
use cosmos_common::stats::HitMiss;
use cosmos_common::LineAddr;

/// Which level served a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataHit {
    /// Served by the core's L1.
    L1,
    /// Served by the core's L2.
    L2,
    /// Served by the shared LLC.
    Llc,
    /// Missed everywhere; DRAM access required.
    Dram,
}

impl DataHit {
    /// Whether the data was on-chip (anywhere above DRAM).
    pub const fn on_chip(self) -> bool {
        !matches!(self, DataHit::Dram)
    }
}

/// Per-core L1/L2 caches plus the shared LLC.
pub struct CacheHierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    l1_stats: HitMiss,
    l2_stats: HitMiss,
    llc_stats: HitMiss,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `config`. When telemetry is
    /// enabled, each level reports into `cache.{l1,l2,llc}.*` (aggregated
    /// across cores).
    pub fn new(config: &SimConfig) -> Self {
        let mk = |lvl: &crate::config::CacheLevelConfig, role: &str| {
            let mut c = Cache::new(CacheConfig::new(lvl.size_bytes, lvl.ways), PolicyKind::Lru);
            c.attach_telemetry(&config.telemetry, role);
            c
        };
        Self {
            l1: (0..config.cores).map(|_| mk(&config.l1, "l1")).collect(),
            l2: (0..config.cores).map(|_| mk(&config.l2, "l2")).collect(),
            llc: mk(&config.llc, "llc"),
            l1_stats: HitMiss::new(),
            l2_stats: HitMiss::new(),
            llc_stats: HitMiss::new(),
        }
    }

    /// Performs a demand access from `core`, filling caches on the way and
    /// cascading dirty evictions. Dirty lines pushed out of the LLC (each
    /// needing a DRAM writeback and, in secure designs, counter/MAC/tree
    /// updates) are appended to `writebacks`, which is cleared first — the
    /// caller owns the buffer so the hot path never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    // cosmos-lint: hot
    pub fn access(
        &mut self,
        core: usize,
        line: LineAddr,
        write: bool,
        writebacks: &mut Vec<LineAddr>,
    ) -> DataHit {
        writebacks.clear();

        // L1.
        let r1 = self.l1[core].access(line, write, None);
        self.l1_stats.record(r1.hit);
        if r1.hit {
            return DataHit::L1;
        }
        if let Some(ev) = r1.evicted {
            if ev.dirty {
                self.spill_to_l2(core, ev.line, writebacks);
            }
        }

        // L2 (demand fill; a write allocates and dirties only L1).
        let r2 = self.l2[core].access(line, false, None);
        self.l2_stats.record(r2.hit);
        if let Some(ev) = r2.evicted {
            if ev.dirty {
                self.spill_to_llc(ev.line, writebacks);
            }
        }
        if r2.hit {
            return DataHit::L2;
        }

        // LLC.
        let r3 = self.llc.access(line, false, None);
        self.llc_stats.record(r3.hit);
        if let Some(ev) = r3.evicted {
            if ev.dirty {
                writebacks.push(ev.line);
            }
        }
        if r3.hit {
            DataHit::Llc
        } else {
            DataHit::Dram
        }
    }

    fn spill_to_l2(&mut self, core: usize, line: LineAddr, writebacks: &mut Vec<LineAddr>) {
        if let Some(ev) = self.l2[core].fill(line, true) {
            if ev.dirty {
                self.spill_to_llc(ev.line, writebacks);
            }
        }
    }

    fn spill_to_llc(&mut self, line: LineAddr, writebacks: &mut Vec<LineAddr>) {
        if let Some(ev) = self.llc.fill(line, true) {
            if ev.dirty {
                writebacks.push(ev.line);
            }
        }
    }

    /// Aggregated L1 hit/miss over all cores.
    pub fn l1_stats(&self) -> HitMiss {
        self.l1_stats
    }

    /// Aggregated L2 hit/miss over all cores.
    pub fn l2_stats(&self) -> HitMiss {
        self.l2_stats
    }

    /// LLC hit/miss.
    pub fn llc_stats(&self) -> HitMiss {
        self.llc_stats
    }

    /// Serializes every cache level plus the aggregated level counters for
    /// snapshots.
    pub fn save_state(&self) -> Result<cosmos_common::json::Value, String> {
        let levels = |caches: &[Cache]| -> Result<cosmos_common::json::Value, String> {
            Ok(cosmos_common::json::Value::Array(
                caches
                    .iter()
                    .map(Cache::save_state)
                    .collect::<Result<_, _>>()?,
            ))
        };
        Ok(cosmos_common::json!({
            "l1": (levels(&self.l1)?),
            "l2": (levels(&self.l2)?),
            "llc": (self.llc.save_state()?),
            "l1_stats": (self.l1_stats.to_json()),
            "l2_stats": (self.l2_stats.to_json()),
            "llc_stats": (self.llc_stats.to_json()),
        }))
    }

    /// Restores state produced by [`CacheHierarchy::save_state`] into a
    /// hierarchy built from the same config.
    pub fn load_state(&mut self, v: &cosmos_common::json::Value) -> Result<(), String> {
        use cosmos_common::json::codec;
        let level = |caches: &mut [Cache], key: &str| -> Result<(), String> {
            let arr = codec::field(v, key)?
                .as_array()
                .ok_or_else(|| format!("field `{key}`: expected an array"))?;
            codec::check_len(key, arr.len(), caches.len())?;
            for (cache, saved) in caches.iter_mut().zip(arr) {
                cache.load_state(saved)?;
            }
            Ok(())
        };
        level(&mut self.l1, "l1")?;
        level(&mut self.l2, "l2")?;
        self.llc.load_state(codec::field(v, "llc")?)?;
        self.l1_stats = HitMiss::from_json(codec::field(v, "l1_stats")?)?;
        self.l2_stats = HitMiss::from_json(codec::field(v, "l2_stats")?)?;
        self.llc_stats = HitMiss::from_json(codec::field(v, "llc_stats")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Design, SimConfig};

    fn tiny_hierarchy() -> CacheHierarchy {
        let mut cfg = SimConfig::paper_default(Design::Np);
        cfg.cores = 2;
        cfg.l1.size_bytes = 512; // 4 sets x 2 ways
        cfg.l2.size_bytes = 2048;
        cfg.llc.size_bytes = 4096;
        CacheHierarchy::new(&cfg)
    }

    fn probe(h: &mut CacheHierarchy, core: usize, line: u64, write: bool) -> DataHit {
        let mut wb = Vec::new();
        h.access(core, LineAddr::new(line), write, &mut wb)
    }

    #[test]
    fn first_access_misses_everywhere() {
        let mut h = tiny_hierarchy();
        let mut wb = Vec::new();
        let hit = h.access(0, LineAddr::new(1), false, &mut wb);
        assert_eq!(hit, DataHit::Dram);
        assert!(wb.is_empty());
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = tiny_hierarchy();
        probe(&mut h, 0, 1, false);
        assert_eq!(probe(&mut h, 0, 1, false), DataHit::L1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = tiny_hierarchy();
        // Fill L1 set 1 (lines 1, 5) then overflow it with line 9.
        probe(&mut h, 0, 1, false);
        probe(&mut h, 0, 5, false);
        probe(&mut h, 0, 9, false);
        // Line 1 was evicted from L1 but should hit in L2.
        assert_eq!(probe(&mut h, 0, 1, false), DataHit::L2);
    }

    #[test]
    fn llc_is_shared_between_cores() {
        let mut h = tiny_hierarchy();
        probe(&mut h, 0, 3, false);
        // Core 1 misses its own L1/L2 but hits the shared LLC.
        assert_eq!(probe(&mut h, 1, 3, false), DataHit::Llc);
    }

    #[test]
    fn dirty_data_eventually_writes_back() {
        let mut h = tiny_hierarchy();
        // Dirty many lines so the dirty data cascades out of the 4 KB LLC.
        let mut scratch = Vec::new();
        let mut wb = Vec::new();
        for i in 0..512u64 {
            h.access(0, LineAddr::new(i), true, &mut scratch);
            wb.extend_from_slice(&scratch);
        }
        assert!(!wb.is_empty(), "dirty evictions must surface as writebacks");
    }

    #[test]
    fn stats_accumulate() {
        let mut h = tiny_hierarchy();
        probe(&mut h, 0, 1, false);
        probe(&mut h, 0, 1, false);
        assert_eq!(h.l1_stats().total(), 2);
        assert_eq!(h.l1_stats().hits(), 1);
        assert_eq!(h.llc_stats().misses(), 1);
    }

    #[test]
    fn clean_evictions_do_not_write_back() {
        let mut h = tiny_hierarchy();
        let mut scratch = Vec::new();
        for i in 0..512u64 {
            h.access(0, LineAddr::new(i), false, &mut scratch); // reads only
            assert!(scratch.is_empty(), "clean lines must not be written back");
        }
    }

    #[test]
    fn scratch_buffer_is_cleared_per_access() {
        let mut h = tiny_hierarchy();
        let mut scratch = vec![LineAddr::new(999)];
        h.access(0, LineAddr::new(1), false, &mut scratch);
        assert!(scratch.is_empty(), "access must clear stale entries");
    }
}
