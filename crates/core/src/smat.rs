//! Secure Memory Access Time (paper Eq. 1–2).
//!
//! ```text
//! SMAT = L1 + MR_L1 (L2 + MR_L2 (LLC + MR_LLC (CTR + DRAM)))
//! CTR  = CTR_hit + MR_CTR (CTR_DRAM + CTR_verify)
//! ```
//!
//! Computed from a finished run's measured miss rates and the configured
//! latency constants — the paper's analytic average-latency metric
//! (Figure 14).

use crate::config::SimConfig;
use crate::stats::SimStats;

/// Breakdown of a SMAT computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Smat {
    /// The composite SMAT value in cycles (Eq. 1).
    pub total: f64,
    /// The CTR term in cycles (Eq. 2).
    pub ctr_term: f64,
    /// Average measured DRAM latency used for the DRAM term.
    pub dram_latency: f64,
}

/// Computes SMAT from a run's statistics.
///
/// For NP runs the CTR term is zero. The DRAM term uses the measured
/// average device latency (row-buffer mix + queueing included).
pub fn smat(config: &SimConfig, stats: &SimStats) -> Smat {
    let mr_l1 = stats.l1.miss_rate();
    let mr_l2 = stats.l2.miss_rate();
    let mr_llc = stats.llc.miss_rate();
    let dram_latency = average_dram_latency(config, stats);

    let ctr_term = if config.design.is_secure() {
        let mr_ctr = stats.ctr_cache.demand.miss_rate();
        let ctr_hit = config.ctr_cache.latency as f64
            + config.ctr_combine_latency as f64
            + config.aes_latency as f64;
        // A CTR miss adds the counter DRAM trip and verification; the MT
        // hash checks overlap AES, so the verify term is the authentication
        // latency.
        let ctr_dram = dram_latency;
        let ctr_verify = config.auth_latency as f64;
        ctr_hit + mr_ctr * (ctr_dram + ctr_verify)
    } else {
        0.0
    };

    let total = config.l1.latency as f64
        + mr_l1
            * (config.l2.latency as f64
                + mr_l2 * (config.llc.latency as f64 + mr_llc * (ctr_term + dram_latency)));
    Smat {
        total,
        ctr_term,
        dram_latency,
    }
}

fn average_dram_latency(config: &SimConfig, stats: &SimStats) -> f64 {
    let d = &stats.dram;
    let t = config.dram.timings;
    let req = d.requests();
    if req == 0 {
        return t.row_closed() as f64;
    }
    let service = d.row_hits as f64 * t.row_hit() as f64
        + d.row_closed as f64 * t.row_closed() as f64
        + d.row_conflicts as f64 * t.row_conflict() as f64;
    (service + d.queue_cycles as f64) / req as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use cosmos_common::stats::HitMiss;

    fn stats_with(mr_l1: u64, mr_ctr_hits: u64, mr_ctr_misses: u64) -> SimStats {
        let mut s = SimStats::default();
        for _ in 0..mr_l1 {
            s.l1.miss();
        }
        s.l1.hit(); // avoid 100% edge
        s.l2 = HitMiss::new();
        s.l2.miss();
        s.llc.miss();
        for _ in 0..mr_ctr_hits {
            s.ctr_cache.demand.hit();
        }
        for _ in 0..mr_ctr_misses {
            s.ctr_cache.demand.miss();
        }
        s
    }

    #[test]
    fn np_has_no_ctr_term() {
        let cfg = SimConfig::paper_default(Design::Np);
        let s = stats_with(1, 0, 0);
        let m = smat(&cfg, &s);
        assert_eq!(m.ctr_term, 0.0);
        assert!(m.total > cfg.l1.latency as f64);
    }

    #[test]
    fn secure_smat_exceeds_np() {
        let np_cfg = SimConfig::paper_default(Design::Np);
        let mc_cfg = SimConfig::paper_default(Design::MorphCtr);
        let s = stats_with(1, 1, 9); // 90% CTR miss
        assert!(smat(&mc_cfg, &s).total > smat(&np_cfg, &s).total);
    }

    #[test]
    fn lower_ctr_miss_rate_lowers_smat() {
        let cfg = SimConfig::paper_default(Design::MorphCtr);
        let high = stats_with(1, 1, 9);
        let low = stats_with(1, 9, 1);
        assert!(smat(&cfg, &low).total < smat(&cfg, &high).total);
    }

    #[test]
    fn perfect_l1_collapses_to_l1_latency() {
        let cfg = SimConfig::paper_default(Design::MorphCtr);
        let mut s = SimStats::default();
        s.l1.hit();
        let m = smat(&cfg, &s);
        assert_eq!(m.total, cfg.l1.latency as f64);
    }
}
