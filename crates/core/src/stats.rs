//! Simulation statistics: IPC, traffic breakdown, predictor quality, and
//! convergence timelines.

use cosmos_cache::CacheStats;
use cosmos_common::stats::HitMiss;
use cosmos_dram::DramStats;
use cosmos_rl::{CtrLocalityStats, DataLocationStats};

/// DRAM traffic in 64 B line transfers, split by purpose (paper Figure 2's
/// categories).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// Demand data reads from DRAM.
    pub data_reads: u64,
    /// Data writebacks to DRAM.
    pub data_writes: u64,
    /// Counter-block reads from DRAM (CTR cache misses).
    pub ctr_reads: u64,
    /// Dirty counter-block writebacks.
    pub ctr_writes: u64,
    /// Merkle-tree node reads (integrity verification).
    pub mt_reads: u64,
    /// Merkle-tree node writebacks.
    pub mt_writes: u64,
    /// MAC line reads (1 per 8 data reads).
    pub mac_reads: u64,
    /// MAC line writes (1 per 8 data writes).
    pub mac_writes: u64,
    /// Background re-encryption writes from counter overflows.
    pub reencrypt_writes: u64,
    /// Speculative DRAM data fetches killed by a wrong off-chip prediction.
    pub killed_speculative: u64,
}

impl TrafficBreakdown {
    /// Total line transfers.
    pub const fn total(&self) -> u64 {
        self.data_reads
            + self.data_writes
            + self.ctr_reads
            + self.ctr_writes
            + self.mt_reads
            + self.mt_writes
            + self.mac_reads
            + self.mac_writes
            + self.reencrypt_writes
    }

    /// Security-metadata transfers only (everything beyond NP's traffic).
    pub const fn metadata_total(&self) -> u64 {
        self.total() - self.data_reads - self.data_writes
    }

    /// Traffic accumulated since `baseline` (saturating per field), for
    /// warmup-excluding measurement windows.
    pub const fn since(&self, baseline: &TrafficBreakdown) -> TrafficBreakdown {
        TrafficBreakdown {
            data_reads: self.data_reads.saturating_sub(baseline.data_reads),
            data_writes: self.data_writes.saturating_sub(baseline.data_writes),
            ctr_reads: self.ctr_reads.saturating_sub(baseline.ctr_reads),
            ctr_writes: self.ctr_writes.saturating_sub(baseline.ctr_writes),
            mt_reads: self.mt_reads.saturating_sub(baseline.mt_reads),
            mt_writes: self.mt_writes.saturating_sub(baseline.mt_writes),
            mac_reads: self.mac_reads.saturating_sub(baseline.mac_reads),
            mac_writes: self.mac_writes.saturating_sub(baseline.mac_writes),
            reencrypt_writes: self
                .reencrypt_writes
                .saturating_sub(baseline.reencrypt_writes),
            killed_speculative: self
                .killed_speculative
                .saturating_sub(baseline.killed_speculative),
        }
    }
}

/// A convergence sample (paper Figure 8).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimelinePoint {
    /// Accesses processed when the sample was taken.
    pub accesses: u64,
    /// Cumulative data-location prediction accuracy.
    pub dp_accuracy: f64,
    /// CTR cache miss rate over the window since the previous sample.
    pub ctr_miss_rate_window: f64,
}

/// Everything a simulation run measures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total instructions retired (memory accesses + `inst_gap` filler).
    pub instructions: u64,
    /// Total cycles (the slowest core's completion time).
    pub cycles: u64,
    /// Memory accesses processed.
    pub accesses: u64,
    /// Reads processed.
    pub reads: u64,
    /// Writes processed.
    pub writes: u64,
    /// Per-level demand hit/miss (aggregated over cores for L1/L2).
    pub l1: HitMiss,
    /// L2 hit/miss.
    pub l2: HitMiss,
    /// LLC hit/miss.
    pub llc: HitMiss,
    /// CTR cache statistics (demand = CTR lookups).
    pub ctr_cache: CacheStats,
    /// MT metadata cache statistics.
    pub mt_cache: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Traffic breakdown.
    pub traffic: TrafficBreakdown,
    /// Data-location predictor quality (designs with the DP).
    pub data_pred: DataLocationStats,
    /// CTR-locality predictor quality (designs with the CP).
    pub ctr_pred: CtrLocalityStats,
    /// Counter overflow (re-encryption) events.
    pub ctr_overflows: u64,
    /// Sum of read latencies (cycles), for average-latency reporting.
    pub total_read_latency: u64,
    /// Reads that bypassed L2/LLC via a correct off-chip prediction.
    pub early_offchip_reads: u64,
    /// Convergence timeline (when sampling is enabled).
    pub timeline: Vec<TimelinePoint>,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// CTR cache miss rate.
    pub fn ctr_miss_rate(&self) -> f64 {
        self.ctr_cache.demand.miss_rate()
    }

    /// Average read latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn traffic_bytes(&self) -> u64 {
        self.traffic.total() * 64
    }

    /// Statistics accumulated since `baseline` — the measurement window of
    /// a warmed-up run. Every counter subtracts saturating; the timeline
    /// keeps only points sampled after the baseline.
    pub fn since(&self, baseline: &SimStats) -> SimStats {
        SimStats {
            instructions: self.instructions.saturating_sub(baseline.instructions),
            cycles: self.cycles.saturating_sub(baseline.cycles),
            accesses: self.accesses.saturating_sub(baseline.accesses),
            reads: self.reads.saturating_sub(baseline.reads),
            writes: self.writes.saturating_sub(baseline.writes),
            l1: self.l1.since(&baseline.l1),
            l2: self.l2.since(&baseline.l2),
            llc: self.llc.since(&baseline.llc),
            ctr_cache: self.ctr_cache.since(&baseline.ctr_cache),
            mt_cache: self.mt_cache.since(&baseline.mt_cache),
            dram: self.dram.since(&baseline.dram),
            traffic: self.traffic.since(&baseline.traffic),
            data_pred: self.data_pred.since(&baseline.data_pred),
            ctr_pred: self.ctr_pred.since(&baseline.ctr_pred),
            ctr_overflows: self.ctr_overflows.saturating_sub(baseline.ctr_overflows),
            total_read_latency: self
                .total_read_latency
                .saturating_sub(baseline.total_read_latency),
            early_offchip_reads: self
                .early_offchip_reads
                .saturating_sub(baseline.early_offchip_reads),
            timeline: self
                .timeline
                .iter()
                .filter(|p| p.accesses > baseline.accesses)
                .copied()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let t = TrafficBreakdown {
            data_reads: 10,
            data_writes: 5,
            ctr_reads: 3,
            ctr_writes: 1,
            mt_reads: 20,
            mt_writes: 2,
            mac_reads: 1,
            mac_writes: 1,
            reencrypt_writes: 4,
            killed_speculative: 7,
        };
        assert_eq!(t.total(), 47);
        assert_eq!(t.metadata_total(), 32);
    }

    #[test]
    fn ipc_guards_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_read_latency(), 0.0);
    }

    #[test]
    fn since_subtracts_and_filters_timeline() {
        let baseline = SimStats {
            instructions: 100,
            cycles: 50,
            accesses: 10,
            reads: 8,
            writes: 2,
            total_read_latency: 400,
            ..SimStats::default()
        };
        let total = SimStats {
            instructions: 1000,
            cycles: 600,
            accesses: 100,
            reads: 70,
            writes: 30,
            total_read_latency: 4000,
            timeline: vec![
                TimelinePoint {
                    accesses: 5,
                    ..TimelinePoint::default()
                },
                TimelinePoint {
                    accesses: 50,
                    ..TimelinePoint::default()
                },
            ],
            ..SimStats::default()
        };
        let window = total.since(&baseline);
        assert_eq!(window.instructions, 900);
        assert_eq!(window.cycles, 550);
        assert_eq!(window.accesses, 90);
        assert_eq!(window.reads, 62);
        assert_eq!(window.writes, 28);
        assert_eq!(window.total_read_latency, 3600);
        assert_eq!(window.timeline.len(), 1);
        assert_eq!(window.timeline[0].accesses, 50);
    }

    #[test]
    fn ipc_basic() {
        let s = SimStats {
            instructions: 1000,
            cycles: 2000,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 0.5);
    }
}
