//! Simulation statistics: IPC, traffic breakdown, predictor quality, and
//! convergence timelines.

use cosmos_cache::CacheStats;
use cosmos_common::stats::HitMiss;
use cosmos_dram::DramStats;
use cosmos_rl::{CtrLocalityStats, DataLocationStats};

/// DRAM traffic in 64 B line transfers, split by purpose (paper Figure 2's
/// categories).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// Demand data reads from DRAM.
    pub data_reads: u64,
    /// Data writebacks to DRAM.
    pub data_writes: u64,
    /// Counter-block reads from DRAM (CTR cache misses).
    pub ctr_reads: u64,
    /// Dirty counter-block writebacks.
    pub ctr_writes: u64,
    /// Merkle-tree node reads (integrity verification).
    pub mt_reads: u64,
    /// Merkle-tree node writebacks.
    pub mt_writes: u64,
    /// MAC line reads (1 per 8 data reads).
    pub mac_reads: u64,
    /// MAC line writes (1 per 8 data writes).
    pub mac_writes: u64,
    /// Background re-encryption writes from counter overflows.
    pub reencrypt_writes: u64,
    /// Speculative DRAM data fetches killed by a wrong off-chip prediction.
    pub killed_speculative: u64,
}

impl TrafficBreakdown {
    /// Total line transfers. Killed speculative fetches still move bus
    /// lines (the row was activated and the burst issued before the kill),
    /// so they count toward the total even though no useful data arrived.
    pub const fn total(&self) -> u64 {
        self.data_reads
            + self.data_writes
            + self.ctr_reads
            + self.ctr_writes
            + self.mt_reads
            + self.mt_writes
            + self.mac_reads
            + self.mac_writes
            + self.reencrypt_writes
            + self.killed_speculative
    }

    /// Security-metadata transfers only (everything beyond NP's traffic
    /// that isn't data movement — killed speculative fetches are wasted
    /// *data* transfers, not metadata).
    pub const fn metadata_total(&self) -> u64 {
        self.total() - self.data_reads - self.data_writes - self.killed_speculative
    }

    /// Wasted transfers: lines moved without delivering useful data
    /// (speculative DRAM fetches killed by a wrong off-chip prediction).
    pub const fn wasted_total(&self) -> u64 {
        self.killed_speculative
    }

    /// Serializes the breakdown for snapshots.
    pub fn to_json(&self) -> cosmos_common::json::Value {
        cosmos_common::json!({
            "data_reads": (self.data_reads),
            "data_writes": (self.data_writes),
            "ctr_reads": (self.ctr_reads),
            "ctr_writes": (self.ctr_writes),
            "mt_reads": (self.mt_reads),
            "mt_writes": (self.mt_writes),
            "mac_reads": (self.mac_reads),
            "mac_writes": (self.mac_writes),
            "reencrypt_writes": (self.reencrypt_writes),
            "killed_speculative": (self.killed_speculative),
        })
    }

    /// Rebuilds a breakdown serialized by [`TrafficBreakdown::to_json`].
    pub fn from_json(v: &cosmos_common::json::Value) -> Result<Self, String> {
        use cosmos_common::json::codec;
        Ok(Self {
            data_reads: codec::u64_field(v, "data_reads")?,
            data_writes: codec::u64_field(v, "data_writes")?,
            ctr_reads: codec::u64_field(v, "ctr_reads")?,
            ctr_writes: codec::u64_field(v, "ctr_writes")?,
            mt_reads: codec::u64_field(v, "mt_reads")?,
            mt_writes: codec::u64_field(v, "mt_writes")?,
            mac_reads: codec::u64_field(v, "mac_reads")?,
            mac_writes: codec::u64_field(v, "mac_writes")?,
            reencrypt_writes: codec::u64_field(v, "reencrypt_writes")?,
            killed_speculative: codec::u64_field(v, "killed_speculative")?,
        })
    }

    /// Traffic accumulated since `baseline`, for warmup-excluding
    /// measurement windows. Each subtraction is checked in every build
    /// profile (`cosmos_common::stats::window_sub`): a field that went
    /// backwards means a counter reset, and the window would be garbage.
    pub fn since(&self, baseline: &TrafficBreakdown) -> TrafficBreakdown {
        use cosmos_common::stats::window_sub;
        TrafficBreakdown {
            data_reads: window_sub(self.data_reads, baseline.data_reads),
            data_writes: window_sub(self.data_writes, baseline.data_writes),
            ctr_reads: window_sub(self.ctr_reads, baseline.ctr_reads),
            ctr_writes: window_sub(self.ctr_writes, baseline.ctr_writes),
            mt_reads: window_sub(self.mt_reads, baseline.mt_reads),
            mt_writes: window_sub(self.mt_writes, baseline.mt_writes),
            mac_reads: window_sub(self.mac_reads, baseline.mac_reads),
            mac_writes: window_sub(self.mac_writes, baseline.mac_writes),
            reencrypt_writes: window_sub(self.reencrypt_writes, baseline.reencrypt_writes),
            killed_speculative: window_sub(self.killed_speculative, baseline.killed_speculative),
        }
    }
}

/// Number of tenant buckets tracked by [`TenantCtrStats`] attribution.
/// Tenant ids are folded modulo this, so bucket 0 is the default/victim
/// tenant and any small id keeps its own bucket.
pub const MAX_TENANTS: usize = 4;

/// Per-tenant CTR-cache attribution: the slice of CTR lookups issued on
/// behalf of one tenant's accesses (DESIGN.md §16). `miss_latency` sums
/// the critical-path cycles of read misses only — the observable an
/// occupancy-probing attacker times; writes are off the critical path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCtrStats {
    /// CTR-cache hits attributed to the tenant (reads and writes).
    pub hits: u64,
    /// CTR-cache misses attributed to the tenant (reads and writes).
    pub misses: u64,
    /// Summed critical-path cycles of the tenant's read misses.
    pub miss_latency: u64,
}

impl TenantCtrStats {
    /// Total CTR lookups attributed to the tenant.
    pub const fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Serializes the bucket for snapshots.
    pub fn to_json(&self) -> cosmos_common::json::Value {
        cosmos_common::json!({
            "hits": (self.hits),
            "misses": (self.misses),
            "miss_latency": (self.miss_latency),
        })
    }

    /// Rebuilds a bucket serialized by [`TenantCtrStats::to_json`].
    pub fn from_json(v: &cosmos_common::json::Value) -> Result<Self, String> {
        use cosmos_common::json::codec;
        Ok(Self {
            hits: codec::u64_field(v, "hits")?,
            misses: codec::u64_field(v, "misses")?,
            miss_latency: codec::u64_field(v, "miss_latency")?,
        })
    }

    /// Counts accumulated since `baseline` (checked like every stat
    /// window — see [`TrafficBreakdown::since`]).
    pub fn since(&self, baseline: &TenantCtrStats) -> TenantCtrStats {
        use cosmos_common::stats::window_sub;
        TenantCtrStats {
            hits: window_sub(self.hits, baseline.hits),
            misses: window_sub(self.misses, baseline.misses),
            miss_latency: window_sub(self.miss_latency, baseline.miss_latency),
        }
    }
}

/// A convergence sample (paper Figure 8).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimelinePoint {
    /// Accesses processed when the sample was taken.
    pub accesses: u64,
    /// Data-location prediction accuracy over the accesses this
    /// [`SimStats`] covers — cumulative from access 0 in a full run, and
    /// rebased onto the measurement window by [`SimStats::since`] (so a
    /// warmup-excluded window is not contaminated by pre-baseline
    /// predictor history).
    pub dp_accuracy: f64,
    /// Correct data-location predictions when the sample was taken,
    /// cumulative from access 0 (kept raw so `since` can rebase
    /// `dp_accuracy` onto any baseline).
    pub dp_correct: u64,
    /// Resolved data-location predictions when the sample was taken,
    /// cumulative from access 0.
    pub dp_total: u64,
    /// CTR cache miss rate over the window since the previous sample.
    pub ctr_miss_rate_window: f64,
}

impl TimelinePoint {
    /// Serializes the sample for snapshots. The two rates are stored as
    /// IEEE-754 bit patterns so restore is bit-exact.
    pub fn to_json(&self) -> cosmos_common::json::Value {
        cosmos_common::json!({
            "accesses": (self.accesses),
            "dp_accuracy_bits": (self.dp_accuracy.to_bits()),
            "dp_correct": (self.dp_correct),
            "dp_total": (self.dp_total),
            "ctr_miss_rate_window_bits": (self.ctr_miss_rate_window.to_bits()),
        })
    }

    /// Rebuilds a sample serialized by [`TimelinePoint::to_json`].
    pub fn from_json(v: &cosmos_common::json::Value) -> Result<Self, String> {
        use cosmos_common::json::codec;
        Ok(Self {
            accesses: codec::u64_field(v, "accesses")?,
            dp_accuracy: f64::from_bits(codec::u64_field(v, "dp_accuracy_bits")?),
            dp_correct: codec::u64_field(v, "dp_correct")?,
            dp_total: codec::u64_field(v, "dp_total")?,
            ctr_miss_rate_window: f64::from_bits(codec::u64_field(v, "ctr_miss_rate_window_bits")?),
        })
    }
}

/// Everything a simulation run measures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total instructions retired (memory accesses + `inst_gap` filler).
    pub instructions: u64,
    /// Total cycles (the slowest core's completion time).
    pub cycles: u64,
    /// Memory accesses processed.
    pub accesses: u64,
    /// Reads processed.
    pub reads: u64,
    /// Writes processed.
    pub writes: u64,
    /// Per-level demand hit/miss (aggregated over cores for L1/L2).
    pub l1: HitMiss,
    /// L2 hit/miss.
    pub l2: HitMiss,
    /// LLC hit/miss.
    pub llc: HitMiss,
    /// CTR cache statistics (demand = CTR lookups).
    pub ctr_cache: CacheStats,
    /// MT metadata cache statistics.
    pub mt_cache: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Traffic breakdown.
    pub traffic: TrafficBreakdown,
    /// Data-location predictor quality (designs with the DP).
    pub data_pred: DataLocationStats,
    /// CTR-locality predictor quality (designs with the CP).
    pub ctr_pred: CtrLocalityStats,
    /// Counter overflow (re-encryption) events.
    pub ctr_overflows: u64,
    /// Sum of read latencies (cycles), for average-latency reporting.
    pub total_read_latency: u64,
    /// Reads that bypassed L2/LLC via a correct off-chip prediction.
    pub early_offchip_reads: u64,
    /// Per-tenant CTR-cache attribution (tenant id mod [`MAX_TENANTS`]).
    /// Single-tenant traces land entirely in bucket 0.
    pub tenant_ctr: [TenantCtrStats; MAX_TENANTS],
    /// Convergence timeline (when sampling is enabled).
    pub timeline: Vec<TimelinePoint>,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// CTR cache miss rate.
    pub fn ctr_miss_rate(&self) -> f64 {
        self.ctr_cache.demand.miss_rate()
    }

    /// Average read latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn traffic_bytes(&self) -> u64 {
        self.traffic.total() * 64
    }

    /// Serializes every field for snapshots.
    pub fn to_json(&self) -> cosmos_common::json::Value {
        cosmos_common::json!({
            "instructions": (self.instructions),
            "cycles": (self.cycles),
            "accesses": (self.accesses),
            "reads": (self.reads),
            "writes": (self.writes),
            "l1": (self.l1.to_json()),
            "l2": (self.l2.to_json()),
            "llc": (self.llc.to_json()),
            "ctr_cache": (self.ctr_cache.to_json()),
            "mt_cache": (self.mt_cache.to_json()),
            "dram": (self.dram.to_json()),
            "traffic": (self.traffic.to_json()),
            "data_pred": (self.data_pred.to_json()),
            "ctr_pred": (self.ctr_pred.to_json()),
            "ctr_overflows": (self.ctr_overflows),
            "total_read_latency": (self.total_read_latency),
            "early_offchip_reads": (self.early_offchip_reads),
            "tenant_ctr": (cosmos_common::json::Value::Array(
                self.tenant_ctr.iter().map(TenantCtrStats::to_json).collect(),
            )),
            "timeline": (cosmos_common::json::Value::Array(
                self.timeline.iter().map(TimelinePoint::to_json).collect(),
            )),
        })
    }

    /// Rebuilds statistics serialized by [`SimStats::to_json`].
    pub fn from_json(v: &cosmos_common::json::Value) -> Result<Self, String> {
        use cosmos_common::json::codec;
        let timeline = codec::field(v, "timeline")?
            .as_array()
            .ok_or_else(|| "field `timeline`: expected an array".to_string())?
            .iter()
            .map(TimelinePoint::from_json)
            .collect::<Result<_, _>>()?;
        let tenant_vec: Vec<TenantCtrStats> = codec::field(v, "tenant_ctr")?
            .as_array()
            .ok_or_else(|| "field `tenant_ctr`: expected an array".to_string())?
            .iter()
            .map(TenantCtrStats::from_json)
            .collect::<Result<_, _>>()?;
        let tenant_ctr: [TenantCtrStats; MAX_TENANTS] = tenant_vec
            .try_into()
            .map_err(|_| format!("field `tenant_ctr`: expected {MAX_TENANTS} buckets"))?;
        Ok(Self {
            instructions: codec::u64_field(v, "instructions")?,
            cycles: codec::u64_field(v, "cycles")?,
            accesses: codec::u64_field(v, "accesses")?,
            reads: codec::u64_field(v, "reads")?,
            writes: codec::u64_field(v, "writes")?,
            l1: HitMiss::from_json(codec::field(v, "l1")?)?,
            l2: HitMiss::from_json(codec::field(v, "l2")?)?,
            llc: HitMiss::from_json(codec::field(v, "llc")?)?,
            ctr_cache: CacheStats::from_json(codec::field(v, "ctr_cache")?)?,
            mt_cache: CacheStats::from_json(codec::field(v, "mt_cache")?)?,
            dram: DramStats::from_json(codec::field(v, "dram")?)?,
            traffic: TrafficBreakdown::from_json(codec::field(v, "traffic")?)?,
            data_pred: DataLocationStats::from_json(codec::field(v, "data_pred")?)?,
            ctr_pred: CtrLocalityStats::from_json(codec::field(v, "ctr_pred")?)?,
            ctr_overflows: codec::u64_field(v, "ctr_overflows")?,
            total_read_latency: codec::u64_field(v, "total_read_latency")?,
            early_offchip_reads: codec::u64_field(v, "early_offchip_reads")?,
            tenant_ctr,
            timeline,
        })
    }

    /// Statistics accumulated since `baseline` — the measurement window of
    /// a warmed-up run. The timeline keeps only points sampled after the
    /// baseline, with each point's `dp_accuracy` rebased onto the window
    /// (predictions resolved before the baseline no longer dilute it).
    /// Every scalar subtraction is checked in every build profile
    /// (`cosmos_common::stats::window_sub`): a counter that went backwards
    /// means a mid-window reset, and the window would be garbage.
    pub fn since(&self, baseline: &SimStats) -> SimStats {
        use cosmos_common::stats::window_sub;
        let base_correct = baseline.data_pred.correct_onchip + baseline.data_pred.correct_offchip;
        let base_total =
            base_correct + baseline.data_pred.wrong_onchip + baseline.data_pred.wrong_offchip;
        SimStats {
            instructions: window_sub(self.instructions, baseline.instructions),
            cycles: window_sub(self.cycles, baseline.cycles),
            accesses: window_sub(self.accesses, baseline.accesses),
            reads: window_sub(self.reads, baseline.reads),
            writes: window_sub(self.writes, baseline.writes),
            l1: self.l1.since(&baseline.l1),
            l2: self.l2.since(&baseline.l2),
            llc: self.llc.since(&baseline.llc),
            ctr_cache: self.ctr_cache.since(&baseline.ctr_cache),
            mt_cache: self.mt_cache.since(&baseline.mt_cache),
            dram: self.dram.since(&baseline.dram),
            traffic: self.traffic.since(&baseline.traffic),
            data_pred: self.data_pred.since(&baseline.data_pred),
            ctr_pred: self.ctr_pred.since(&baseline.ctr_pred),
            ctr_overflows: window_sub(self.ctr_overflows, baseline.ctr_overflows),
            total_read_latency: window_sub(self.total_read_latency, baseline.total_read_latency),
            early_offchip_reads: window_sub(self.early_offchip_reads, baseline.early_offchip_reads),
            tenant_ctr: core::array::from_fn(|i| self.tenant_ctr[i].since(&baseline.tenant_ctr[i])),
            timeline: self
                .timeline
                .iter()
                .filter(|p| p.accesses > baseline.accesses)
                .map(|p| {
                    // Timeline points are cumulative snapshots from the same
                    // monotone counters, and the filter keeps only points
                    // past the baseline, so these windows are checked too.
                    let correct = window_sub(p.dp_correct, base_correct);
                    let total = window_sub(p.dp_total, base_total);
                    TimelinePoint {
                        accesses: window_sub(p.accesses, baseline.accesses),
                        dp_accuracy: if total == 0 {
                            0.0
                        } else {
                            correct as f64 / total as f64
                        },
                        dp_correct: correct,
                        dp_total: total,
                        ctr_miss_rate_window: p.ctr_miss_rate_window,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let t = TrafficBreakdown {
            data_reads: 10,
            data_writes: 5,
            ctr_reads: 3,
            ctr_writes: 1,
            mt_reads: 20,
            mt_writes: 2,
            mac_reads: 1,
            mac_writes: 1,
            reencrypt_writes: 4,
            killed_speculative: 7,
        };
        assert_eq!(t.total(), 54);
        assert_eq!(t.metadata_total(), 32);
        assert_eq!(t.wasted_total(), 7);
    }

    #[test]
    fn ipc_guards_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_read_latency(), 0.0);
    }

    #[test]
    fn since_subtracts_and_filters_timeline() {
        let baseline = SimStats {
            instructions: 100,
            cycles: 50,
            accesses: 10,
            reads: 8,
            writes: 2,
            total_read_latency: 400,
            ..SimStats::default()
        };
        let total = SimStats {
            instructions: 1000,
            cycles: 600,
            accesses: 100,
            reads: 70,
            writes: 30,
            total_read_latency: 4000,
            timeline: vec![
                TimelinePoint {
                    accesses: 5,
                    ..TimelinePoint::default()
                },
                TimelinePoint {
                    accesses: 50,
                    ..TimelinePoint::default()
                },
            ],
            ..SimStats::default()
        };
        let window = total.since(&baseline);
        assert_eq!(window.instructions, 900);
        assert_eq!(window.cycles, 550);
        assert_eq!(window.accesses, 90);
        assert_eq!(window.reads, 62);
        assert_eq!(window.writes, 28);
        assert_eq!(window.total_read_latency, 3600);
        assert_eq!(window.timeline.len(), 1);
        assert_eq!(window.timeline[0].accesses, 40, "rebased onto window");
    }

    #[test]
    fn since_rebases_timeline_dp_accuracy() {
        // Before the baseline: 8/10 correct. After: 2/10 correct. The
        // cumulative point reads 10/20; the window must report 2/10.
        let mut baseline = SimStats {
            accesses: 100,
            ..SimStats::default()
        };
        baseline.data_pred.correct_onchip = 5;
        baseline.data_pred.correct_offchip = 3;
        baseline.data_pred.wrong_onchip = 2;
        let total = SimStats {
            accesses: 200,
            data_pred: DataLocationStats {
                correct_onchip: 6,
                correct_offchip: 4,
                wrong_onchip: 6,
                wrong_offchip: 4,
            },
            timeline: vec![TimelinePoint {
                accesses: 200,
                dp_accuracy: 0.5,
                dp_correct: 10,
                dp_total: 20,
                ctr_miss_rate_window: 0.25,
            }],
            ..SimStats::default()
        };
        let window = total.since(&baseline);
        assert_eq!(window.timeline.len(), 1);
        let p = window.timeline[0];
        assert_eq!(p.accesses, 100);
        assert_eq!(p.dp_correct, 2);
        assert_eq!(p.dp_total, 10);
        assert!((p.dp_accuracy - 0.2).abs() < 1e-12);
        assert_eq!(p.ctr_miss_rate_window, 0.25, "window rate is untouched");
    }

    #[test]
    fn tenant_ctr_roundtrips_and_windows() {
        let mut s = SimStats::default();
        s.tenant_ctr[1] = TenantCtrStats {
            hits: 10,
            misses: 4,
            miss_latency: 900,
        };
        let back = SimStats::from_json(&s.to_json()).expect("round trip");
        assert_eq!(back, s);
        let mut base = SimStats::default();
        base.tenant_ctr[1] = TenantCtrStats {
            hits: 3,
            misses: 1,
            miss_latency: 200,
        };
        let w = s.since(&base).tenant_ctr[1];
        assert_eq!((w.hits, w.misses, w.miss_latency), (7, 3, 700));
        assert_eq!(w.total(), 10);
    }

    #[test]
    fn ipc_basic() {
        let s = SimStats {
            instructions: 1000,
            cycles: 2000,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 0.5);
    }
}
