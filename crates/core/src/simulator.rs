//! The trace-driven simulator: per-core timelines, the design-specific
//! data/CTR datapaths, and statistics collection.

use crate::config::{Design, SimConfig};
use crate::hierarchy::{CacheHierarchy, DataHit};
use crate::secure_path::SecurePath;
use crate::stats::{SimStats, TimelinePoint};
use crate::timing::CoreTimeline;
use cosmos_common::{Cycle, LineAddr, MemAccess, Trace};
use cosmos_dram::Dram;
use cosmos_rl::{DataLocation, DataLocationPredictor};

/// The COSMOS simulator.
///
/// Consumes a trace and produces [`SimStats`]. Cores execute one
/// instruction per cycle between memory accesses; loads block their core
/// until completion, stores retire through a store buffer at L1 latency
/// (their cache fills, writebacks, and secure-path work still happen and
/// are charged as traffic).
pub struct Simulator {
    config: SimConfig,
    hierarchy: CacheHierarchy,
    secure: Option<SecurePath>,
    data_pred: Option<DataLocationPredictor>,
    dram: Dram,
    timeline: CoreTimeline,
    // Reusable writeback buffer (capacity persists across accesses so the
    // hot path never allocates).
    wb_scratch: Vec<LineAddr>,
    stats: SimStats,
    // Statistics snapshot taken at the end of warmup; `finalize` reports
    // only what accumulated after it (boxed: it is absent on the hot path).
    baseline: Option<Box<SimStats>>,
    // Timeline window state.
    window_ctr_total: u64,
    window_ctr_miss: u64,
}

impl Simulator {
    /// Builds a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        let secure = config.design.is_secure().then(|| SecurePath::new(&config));
        let data_pred = config.design.has_data_predictor().then(|| {
            let mut dp = DataLocationPredictor::with_rewards(
                config.data_rl,
                config.rewards.data,
                cosmos_common::rng::streams::DATA_PREDICTOR.derive_seed(config.seed),
            );
            dp.set_telemetry(config.telemetry.clone());
            dp
        });
        let mut dram = Dram::new(config.dram);
        dram.set_telemetry(config.telemetry.clone());
        Self {
            hierarchy: CacheHierarchy::new(&config),
            secure,
            data_pred,
            dram,
            timeline: CoreTimeline::new(config.cores),
            wb_scratch: Vec::new(),
            stats: SimStats::default(),
            baseline: None,
            window_ctr_total: 0,
            window_ctr_miss: 0,
            config,
        }
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The secure path, when the design has one (checker access).
    pub fn secure(&self) -> Option<&SecurePath> {
        self.secure.as_ref()
    }

    /// Per-core completion cycles so far (checker access: each core's
    /// timeline must only move forward).
    pub fn core_ready(&self) -> &[Cycle] {
        self.timeline.ready()
    }

    /// Attaches a correctness observer to the secure path (see
    /// [`crate::check`]). Returns `false` when the design has no secure
    /// path to observe (NP).
    pub fn set_secure_observer(&mut self, observer: Box<dyn crate::check::SecureObserver>) -> bool {
        match self.secure.as_mut() {
            Some(sp) => {
                sp.set_observer(observer);
                true
            }
            None => false,
        }
    }

    /// Runs the whole trace and returns the statistics.
    pub fn run(mut self, trace: &Trace) -> SimStats {
        for access in trace.iter() {
            self.step(access);
        }
        self.finalize()
    }

    /// Runs a streaming [`cosmos_common::TraceSource`] to exhaustion —
    /// useful for workloads too large to materialize.
    pub fn run_source(mut self, source: &mut dyn cosmos_common::TraceSource) -> SimStats {
        while let Some(access) = source.next_access() {
            self.step(&access);
        }
        self.finalize()
    }

    /// Processes a single access: issue (skipping the instruction gap in
    /// one step), resolve the completion time through the component chain,
    /// retire.
    // cosmos-lint: hot
    pub fn step(&mut self, access: &MemAccess) {
        let core = access.core as usize % self.config.cores;
        let line = access.addr.line();
        let issue = self.timeline.issue(core, access.inst_gap as u64);
        self.stats.instructions += access.inst_gap as u64 + 1;
        self.stats.accesses += 1;
        if let Some(sp) = self.secure.as_mut() {
            sp.set_tenant(access.tenant);
        }

        if access.kind.is_write() {
            self.stats.writes += 1;
            self.process_write(core, line, issue);
        } else {
            self.stats.reads += 1;
            let done = self.process_read(core, access, line, issue);
            let latency = (done - issue).value();
            self.stats.total_read_latency += latency;
            self.timeline.retire(core, done);
        }

        // Timeline sampling is off (interval 0) for every figure run except
        // fig13; skip the call entirely on the common path.
        if self.config.sample_interval != 0 {
            self.maybe_sample();
        }
    }

    /// Runs `accesses` as a warmup prefix: caches, predictors, and DRAM
    /// state all evolve exactly as in a normal run, but the statistics
    /// accumulated so far are excluded from [`Simulator::finalize`]'s
    /// report. Used by interval sampling to prime microarchitectural state
    /// before a measured representative interval.
    ///
    /// Calling it again replaces the previous measurement baseline.
    pub fn warmup<'a>(&mut self, accesses: impl IntoIterator<Item = &'a MemAccess>) {
        for access in accesses {
            self.step(access);
        }
        self.freeze_stats();
    }

    /// Marks the current statistics as the measurement baseline:
    /// [`Simulator::finalize`] will report only what accumulates from here
    /// on. State (cache contents, predictor tables, core timelines) is
    /// untouched.
    pub fn freeze_stats(&mut self) {
        self.baseline = Some(Box::new(self.snapshot()));
    }

    /// A non-destructive snapshot of the *cumulative* statistics (warmup
    /// included), as of the accesses processed so far.
    pub fn snapshot(&self) -> SimStats {
        let mut stats = self.stats.clone();
        stats.cycles = self.timeline.horizon();
        stats.l1 = self.hierarchy.l1_stats();
        stats.l2 = self.hierarchy.l2_stats();
        stats.llc = self.hierarchy.llc_stats();
        if let Some(sp) = &self.secure {
            stats.ctr_cache = *sp.ctr_cache().stats();
            stats.mt_cache = *sp.mt_cache().stats();
            stats.ctr_overflows = sp.overflows();
            stats.tenant_ctr = *sp.tenant_stats();
            if let Some(loc) = sp.locality() {
                stats.ctr_pred = *loc.stats();
            }
        }
        if let Some(dp) = &self.data_pred {
            stats.data_pred = *dp.stats();
        }
        stats.dram = *self.dram.stats();
        stats
    }

    /// Serializes the complete microarchitectural and statistical state of
    /// the simulator: caches, counters, predictors (tables, CET, RNG
    /// positions), DRAM banks, core timelines, cumulative statistics, and
    /// any frozen measurement baseline. A simulator built from the *same*
    /// config and fed this state via [`Simulator::load_state`] continues
    /// byte-identically to one that never stopped.
    ///
    /// The writeback scratch buffer is not stored — it is empty between
    /// accesses (capacity-only). Configuration is not stored either; the
    /// caller pairs the state with its config (the serve layer adds a
    /// config fingerprint to its snapshot envelope).
    ///
    /// Fails for state that cannot round-trip: boxed replacement policies
    /// and attached CTR prefetchers.
    pub fn save_state(&self) -> Result<cosmos_common::json::Value, String> {
        use cosmos_common::json::Value;
        let secure = match &self.secure {
            Some(sp) => sp.save_state()?,
            None => Value::Null,
        };
        let data_pred = match &self.data_pred {
            Some(dp) => dp.save_state(),
            None => Value::Null,
        };
        let baseline = match &self.baseline {
            Some(b) => b.to_json(),
            None => Value::Null,
        };
        Ok(cosmos_common::json!({
            "hierarchy": (self.hierarchy.save_state()?),
            "secure": (secure),
            "data_pred": (data_pred),
            "dram": (self.dram.save_state()),
            "timeline": (self.timeline.save_state()),
            "stats": (self.stats.to_json()),
            "baseline": (baseline),
            "window_ctr_total": (self.window_ctr_total),
            "window_ctr_miss": (self.window_ctr_miss),
        }))
    }

    /// Restores state produced by [`Simulator::save_state`] into a
    /// simulator built from the same configuration. Every mismatch —
    /// missing field, wrong geometry, design with/without a predictor the
    /// snapshot lacks/carries — is rejected with an error naming the
    /// offending field.
    pub fn load_state(&mut self, v: &cosmos_common::json::Value) -> Result<(), String> {
        use cosmos_common::json::{codec, Value};
        self.hierarchy.load_state(codec::field(v, "hierarchy")?)?;
        let secure = codec::field(v, "secure")?;
        match (self.secure.as_mut(), matches!(secure, Value::Null)) {
            (Some(sp), false) => sp.load_state(secure)?,
            (None, true) => {}
            (Some(_), true) => {
                return Err("snapshot has no secure path but this design expects one".into())
            }
            (None, false) => {
                return Err("snapshot carries a secure path but this design has none".into())
            }
        }
        let data_pred = codec::field(v, "data_pred")?;
        match (self.data_pred.as_mut(), matches!(data_pred, Value::Null)) {
            (Some(dp), false) => dp.load_state(data_pred)?,
            (None, true) => {}
            (Some(_), true) => {
                return Err(
                    "snapshot has no data-location predictor but this design expects one".into(),
                )
            }
            (None, false) => {
                return Err(
                    "snapshot carries a data-location predictor but this design has none".into(),
                )
            }
        }
        self.dram.load_state(codec::field(v, "dram")?)?;
        self.timeline.load_state(codec::field(v, "timeline")?)?;
        self.stats = SimStats::from_json(codec::field(v, "stats")?)?;
        let baseline = codec::field(v, "baseline")?;
        self.baseline = match baseline {
            Value::Null => None,
            other => Some(Box::new(SimStats::from_json(other)?)),
        };
        self.window_ctr_total = codec::u64_field(v, "window_ctr_total")?;
        self.window_ctr_miss = codec::u64_field(v, "window_ctr_miss")?;
        Ok(())
    }

    /// The baseline frozen by the last [`Simulator::warmup`] /
    /// [`Simulator::freeze_stats`] call, or zeroed statistics if none was
    /// frozen — `snapshot().since(&frozen_baseline())` is the current
    /// measurement window either way. Lets one simulator measure several
    /// windows without being consumed by [`Simulator::finalize`].
    pub fn frozen_baseline(&self) -> SimStats {
        match &self.baseline {
            Some(baseline) => (**baseline).clone(),
            None => SimStats::default(),
        }
    }

    /// Finishes the run and extracts statistics. With a warmup baseline
    /// ([`Simulator::warmup`] / [`Simulator::freeze_stats`]), reports only
    /// the measurement window after it.
    pub fn finalize(self) -> SimStats {
        let stats = self.snapshot();
        match &self.baseline {
            Some(baseline) => stats.since(baseline),
            None => stats,
        }
    }

    fn on_chip_latency(&self, hit: DataHit) -> u64 {
        let c = &self.config;
        match hit {
            DataHit::L1 => c.l1.latency,
            DataHit::L2 => c.l1.latency + c.l2.latency,
            DataHit::Llc | DataHit::Dram => c.l1.latency + c.l2.latency + c.llc.latency,
        }
    }

    fn process_read(
        &mut self,
        core: usize,
        access: &MemAccess,
        line: LineAddr,
        issue: Cycle,
    ) -> Cycle {
        // Take/restore keeps the buffer's capacity across accesses.
        let mut writebacks = std::mem::take(&mut self.wb_scratch);
        let hit = self.hierarchy.access(core, line, false, &mut writebacks);
        self.drain_writebacks(&writebacks, issue);
        self.wb_scratch = writebacks;

        if hit == DataHit::L1 {
            return issue + self.config.l1.latency;
        }
        let t_l1_miss = issue + self.config.l1.latency;
        let design = self.config.design;

        // EMCC taps the CTR path at every L1 miss, unconditionally.
        let early_ctr = if design == Design::Emcc {
            let sp = self.secure.as_mut().expect("EMCC is secure");
            Some(sp.ctr_read(line, t_l1_miss, &mut self.dram, &mut self.stats.traffic))
        } else {
            None
        };

        // COSMOS data-location prediction at the L1 miss point: one state
        // hash shared between the prediction and the TD update.
        if let Some(dp) = self.data_pred.as_mut() {
            let (predicted, s) = dp.predict_with_state(access.addr);
            let actual = if hit.on_chip() {
                DataLocation::OnChip
            } else {
                DataLocation::OffChip
            };
            dp.learn_at(s, predicted, actual);

            let done = match (predicted, actual) {
                (DataLocation::OffChip, DataLocation::OffChip) => {
                    // Correct off-chip: speculative DRAM fetch + early CTR,
                    // both starting right after the L1 miss — L2/LLC lookup
                    // happens in parallel and is off the critical path.
                    let sp = self.secure.as_mut().expect("COSMOS is secure");
                    let ctr = sp.ctr_read(line, t_l1_miss, &mut self.dram, &mut self.stats.traffic);
                    let data_done = self.dram.access(line, t_l1_miss, false);
                    self.stats.traffic.data_reads += 1;
                    sp.mac_read(&mut self.stats.traffic);
                    self.stats.early_offchip_reads += 1;
                    self.config.telemetry.spec_issue();
                    data_done.max(ctr.otp_ready) + self.config.auth_latency
                }
                (DataLocation::OffChip, DataLocation::OnChip) => {
                    // Wrong off-chip: the speculative DRAM fetch is killed,
                    // but the CTR access proceeds (beneficial side effect,
                    // paper §6.1.2). The kill-flavoured read flags the
                    // sampled event so explain can attribute any miss here
                    // to misspeculation.
                    let sp = self.secure.as_mut().expect("COSMOS is secure");
                    sp.ctr_read_after_kill(
                        line,
                        t_l1_miss,
                        &mut self.dram,
                        &mut self.stats.traffic,
                    );
                    self.stats.traffic.killed_speculative += 1;
                    self.config.telemetry.spec_kill();
                    issue + self.on_chip_latency(hit)
                }
                (DataLocation::OnChip, DataLocation::OnChip) => issue + self.on_chip_latency(hit),
                (DataLocation::OnChip, DataLocation::OffChip) => {
                    // Wrong on-chip: fall back to the baseline serialized
                    // path — CTR and DRAM start only after the LLC miss.
                    self.serialized_dram_read(line, issue)
                }
            };
            return done;
        }

        // Non-predicting designs.
        if hit.on_chip() {
            return issue + self.on_chip_latency(hit);
        }
        match design {
            Design::Np => {
                let t3 = issue + self.on_chip_latency(DataHit::Dram);
                self.stats.traffic.data_reads += 1;
                self.dram.access(line, t3, false)
            }
            Design::Emcc => {
                let t3 = issue + self.on_chip_latency(DataHit::Dram);
                let data_done = self.dram.access(line, t3, false);
                self.stats.traffic.data_reads += 1;
                let ctr = early_ctr.expect("EMCC issued the CTR at L1 miss");
                let sp = self.secure.as_mut().expect("EMCC is secure");
                sp.mac_read(&mut self.stats.traffic);
                data_done.max(ctr.otp_ready) + self.config.auth_latency
            }
            _ => self.serialized_dram_read(line, issue),
        }
    }

    /// The baseline secure read path: L1+L2+LLC lookups, then DRAM data and
    /// CTR accesses in parallel, then authentication.
    fn serialized_dram_read(&mut self, line: LineAddr, issue: Cycle) -> Cycle {
        let t3 = issue + self.on_chip_latency(DataHit::Dram);
        let data_done = self.dram.access(line, t3, false);
        self.stats.traffic.data_reads += 1;
        match self.secure.as_mut() {
            Some(sp) => {
                let ctr = sp.ctr_read(line, t3, &mut self.dram, &mut self.stats.traffic);
                sp.mac_read(&mut self.stats.traffic);
                data_done.max(ctr.otp_ready) + self.config.auth_latency
            }
            None => data_done,
        }
    }

    fn process_write(&mut self, core: usize, line: LineAddr, issue: Cycle) {
        let mut writebacks = std::mem::take(&mut self.wb_scratch);
        let hit = self.hierarchy.access(core, line, true, &mut writebacks);
        // Store-buffer retirement: the core only pays the L1 latency.
        self.timeline.retire(core, issue + self.config.l1.latency);
        // A store miss that reaches DRAM still fetches (and decrypts) the
        // line — off the critical path, but real traffic.
        if hit == DataHit::Dram {
            self.stats.traffic.data_reads += 1;
            self.dram.access(line, issue, false);
            if let Some(sp) = self.secure.as_mut() {
                sp.ctr_read(line, issue, &mut self.dram, &mut self.stats.traffic);
                sp.mac_read(&mut self.stats.traffic);
            }
        }
        self.drain_writebacks(&writebacks, issue);
        self.wb_scratch = writebacks;
    }

    fn drain_writebacks(&mut self, writebacks: &[LineAddr], now: Cycle) {
        for &wb in writebacks {
            self.stats.traffic.data_writes += 1;
            self.dram.access(wb, now, true);
            if let Some(sp) = self.secure.as_mut() {
                sp.ctr_write(wb, now, &mut self.dram, &mut self.stats.traffic);
            }
        }
    }

    #[cold]
    fn maybe_sample(&mut self) {
        let interval = self.config.sample_interval;
        if interval == 0 || !self.stats.accesses.is_multiple_of(interval as u64) {
            return;
        }
        let (ctr_total, ctr_miss) = match &self.secure {
            Some(sp) => (
                sp.ctr_cache().stats().demand.total(),
                sp.ctr_cache().stats().demand.misses(),
            ),
            None => (0, 0),
        };
        let window_total = ctr_total - self.window_ctr_total;
        let window_miss = ctr_miss - self.window_ctr_miss;
        self.window_ctr_total = ctr_total;
        self.window_ctr_miss = ctr_miss;
        let (dp_accuracy, dp_correct, dp_total) = self
            .data_pred
            .as_ref()
            .map(|p| {
                let s = p.stats();
                let correct = s.correct_onchip + s.correct_offchip;
                (s.accuracy(), correct, s.total())
            })
            .unwrap_or((0.0, 0, 0));
        self.stats.timeline.push(TimelinePoint {
            accesses: self.stats.accesses,
            dp_accuracy,
            dp_correct,
            dp_total,
            ctr_miss_rate_window: cosmos_common::stats::ratio(window_miss, window_total),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_common::PhysAddr;

    fn tiny_config(design: Design) -> SimConfig {
        let mut c = SimConfig::paper_default(design);
        c.cores = 2;
        c.l1.size_bytes = 4096;
        c.l2.size_bytes = 16 * 1024;
        c.llc.size_bytes = 64 * 1024;
        c.ctr_cache.size_bytes = 8192;
        c.mt_cache.size_bytes = 8192;
        c.protected_bytes = 1 << 30;
        c
    }

    fn random_trace(n: usize, lines: u64, write_frac: f64, seed: u64) -> Trace {
        let mut rng = cosmos_common::SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let addr = PhysAddr::new(rng.next_below(lines) * 64);
                let core = (rng.next_u32() % 2) as u8;
                if rng.chance(write_frac) {
                    MemAccess::write(core, addr, 3)
                } else {
                    MemAccess::read(core, addr, 3)
                }
            })
            .collect()
    }

    #[test]
    fn np_runs_and_counts() {
        let t = random_trace(5_000, 10_000, 0.2, 1);
        let stats = Simulator::new(tiny_config(Design::Np)).run(&t);
        assert_eq!(stats.accesses, 5_000);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.0);
        assert_eq!(stats.traffic.ctr_reads, 0, "NP has no counters");
        assert_eq!(stats.traffic.mt_reads, 0);
    }

    #[test]
    fn secure_designs_add_metadata_traffic() {
        let t = random_trace(5_000, 100_000, 0.2, 2);
        let np = Simulator::new(tiny_config(Design::Np)).run(&t);
        let mc = Simulator::new(tiny_config(Design::MorphCtr)).run(&t);
        assert!(mc.traffic.ctr_reads > 0);
        assert!(mc.traffic.mt_reads > 0);
        assert!(mc.traffic.total() > np.traffic.total());
        assert!(mc.ipc() < np.ipc(), "security must cost performance");
    }

    #[test]
    fn all_designs_complete() {
        let t = random_trace(3_000, 50_000, 0.25, 3);
        for d in [
            Design::Np,
            Design::MorphCtr,
            Design::Emcc,
            Design::CosmosDp,
            Design::CosmosCp,
            Design::Cosmos,
        ] {
            let stats = Simulator::new(tiny_config(d)).run(&t);
            assert_eq!(stats.accesses, 3_000, "{d}");
            assert!(stats.cycles > 0, "{d}");
        }
    }

    #[test]
    fn predictor_only_on_dp_designs() {
        let t = random_trace(2_000, 50_000, 0.2, 4);
        let dp = Simulator::new(tiny_config(Design::CosmosDp)).run(&t);
        assert!(dp.data_pred.total() > 0);
        let cp = Simulator::new(tiny_config(Design::CosmosCp)).run(&t);
        assert_eq!(cp.data_pred.total(), 0);
    }

    #[test]
    fn locality_stats_only_on_cp_designs() {
        let t = random_trace(2_000, 50_000, 0.2, 5);
        let cp = Simulator::new(tiny_config(Design::CosmosCp)).run(&t);
        assert!(cp.ctr_pred.predictions > 0);
        let dp = Simulator::new(tiny_config(Design::CosmosDp)).run(&t);
        assert_eq!(dp.ctr_pred.predictions, 0);
    }

    #[test]
    fn tenant_attribution_splits_and_conserves() {
        let base = random_trace(6_000, 100_000, 0.2, 11);
        let tagged: Trace = base
            .iter()
            .enumerate()
            .map(|(i, a)| a.with_tenant((i % 2) as u8))
            .collect();

        let plain = Simulator::new(tiny_config(Design::MorphCtr)).run(&base);
        let split = Simulator::new(tiny_config(Design::MorphCtr)).run(&tagged);

        // Tenant tags are pure attribution: every other statistic is
        // untouched.
        let mut split_zeroed = split.clone();
        split_zeroed.tenant_ctr = plain.tenant_ctr;
        assert_eq!(split_zeroed, plain, "tenant tags perturbed results");

        // Untagged traces land entirely in bucket 0; the tagged run
        // splits across buckets 0 and 1 and conserves the demand total.
        let demand = plain.ctr_cache.demand.total();
        assert_eq!(plain.tenant_ctr[0].total(), demand);
        assert_eq!(plain.tenant_ctr[1].total(), 0);
        assert!(split.tenant_ctr[0].total() > 0);
        assert!(split.tenant_ctr[1].total() > 0);
        let split_sum: u64 = split.tenant_ctr.iter().map(|b| b.total()).sum();
        assert_eq!(split_sum, demand, "tenant buckets must partition lookups");
        assert!(
            split.tenant_ctr.iter().any(|b| b.miss_latency > 0),
            "read misses must accumulate latency"
        );
        // Large tenant ids fold into the bucket array instead of panicking.
        let folded: Trace = base.iter().map(|a| a.with_tenant(250)).collect();
        let f = Simulator::new(tiny_config(Design::MorphCtr)).run(&folded);
        assert_eq!(
            f.tenant_ctr[250 % crate::stats::MAX_TENANTS].total(),
            demand
        );
    }

    #[test]
    fn keyed_index_variants_run_and_differ() {
        let t = random_trace(8_000, 400_000, 0.2, 12);
        let run = |index| {
            let mut c = tiny_config(Design::MorphCtr);
            c.ctr_index = index;
            Simulator::new(c).run(&t)
        };
        use crate::config::CtrIndex;
        let modulo = run(CtrIndex::Modulo);
        let random = run(CtrIndex::Random);
        let skewed = run(CtrIndex::Skewed);
        for (name, s) in [("random", &random), ("skewed", &skewed)] {
            assert_eq!(s.accesses, modulo.accesses, "{name}");
            assert!(s.ctr_cache.demand.total() > 0, "{name}");
        }
        // The keyed mappings place lines differently, so the conflict
        // pattern (and thus the exact miss count) diverges from modulo.
        assert!(
            random.ctr_cache.demand.misses() != modulo.ctr_cache.demand.misses()
                || skewed.ctr_cache.demand.misses() != modulo.ctr_cache.demand.misses(),
            "keyed index variants never changed placement"
        );
    }

    #[test]
    fn deterministic_runs() {
        let t = random_trace(2_000, 20_000, 0.3, 6);
        let a = Simulator::new(tiny_config(Design::Cosmos)).run(&t);
        let b = Simulator::new(tiny_config(Design::Cosmos)).run(&t);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn timeline_sampling() {
        let t = random_trace(5_000, 20_000, 0.2, 7);
        let mut cfg = tiny_config(Design::Cosmos);
        cfg.sample_interval = 1000;
        let stats = Simulator::new(cfg).run(&t);
        assert_eq!(stats.timeline.len(), 5);
        assert!(stats
            .timeline
            .windows(2)
            .all(|w| w[0].accesses < w[1].accesses));
    }

    #[test]
    fn l1_hits_are_cheap() {
        // Single line hammered: everything hits L1 after the first access.
        let t: Trace = (0..1000)
            .map(|_| MemAccess::read(0, PhysAddr::new(0x40), 0))
            .collect();
        let stats = Simulator::new(tiny_config(Design::Cosmos)).run(&t);
        assert!(stats.l1.hit_rate() > 0.99);
        // 2 cycles L1 per access; the single cold miss (full secure DRAM
        // path) amortizes to a small constant over 1000 accesses.
        assert!(stats.avg_read_latency() <= 5.0);
    }

    #[test]
    fn empty_trace_is_fine() {
        let stats = Simulator::new(tiny_config(Design::Cosmos)).run(&Trace::new());
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.ipc(), 0.0);
    }

    #[test]
    fn out_of_range_core_ids_wrap() {
        let t: Trace = (0..100u64)
            .map(|i| MemAccess::read(200 + (i % 4) as u8, PhysAddr::new(i * 64), 1))
            .collect();
        // tiny_config has 2 cores; core ids 200..204 must wrap, not panic.
        let stats = Simulator::new(tiny_config(Design::Cosmos)).run(&t);
        assert_eq!(stats.accesses, 100);
    }

    #[test]
    fn write_only_trace_runs_and_writes_back() {
        let t: Trace = (0..5000u64)
            .map(|i| MemAccess::write(0, PhysAddr::new((i % 4096) * 64 * 7), 1))
            .collect();
        let stats = Simulator::new(tiny_config(Design::MorphCtr)).run(&t);
        assert_eq!(stats.writes, 5000);
        assert_eq!(stats.reads, 0);
        assert!(stats.traffic.data_writes > 0, "dirty lines must write back");
        assert!(stats.ctr_overflows == 0 || stats.traffic.reencrypt_writes > 0);
    }

    #[test]
    fn single_access_latency_is_full_cold_path() {
        let t: Trace = std::iter::once(MemAccess::read(0, PhysAddr::new(0x40), 0)).collect();
        let np = Simulator::new(tiny_config(Design::Np)).run(&t);
        let mc = Simulator::new(tiny_config(Design::MorphCtr)).run(&t);
        // Secure cold read pays CTR DRAM + Merkle + AES + auth on top of NP.
        assert!(mc.total_read_latency > np.total_read_latency + 100);
    }

    #[test]
    fn warmup_excludes_prefix_from_stats() {
        let t = random_trace(6_000, 20_000, 0.2, 9);
        let half = t.len() / 2;
        let (prefix, suffix) = t.as_slice().split_at(half);

        let mut sim = Simulator::new(tiny_config(Design::Cosmos));
        sim.warmup(prefix.iter());
        for a in suffix {
            sim.step(a);
        }
        let window = sim.finalize();
        assert_eq!(window.accesses, suffix.len() as u64);

        // The warmup path must agree exactly with an explicit
        // snapshot-and-subtract over the same access stream.
        let mut manual = Simulator::new(tiny_config(Design::Cosmos));
        for a in prefix {
            manual.step(a);
        }
        let base = manual.snapshot();
        for a in suffix {
            manual.step(a);
        }
        let expected = manual.finalize().since(&base);
        assert_eq!(window, expected);

        // And the window is a strict subset of the full run.
        let full = Simulator::new(tiny_config(Design::Cosmos)).run(&t);
        assert!(window.cycles < full.cycles);
        assert!(window.l1.total() < full.l1.total());
        assert!(window.traffic.total() <= full.traffic.total());
    }

    #[test]
    fn freeze_stats_without_warmup_reports_everything_after() {
        let t = random_trace(2_000, 10_000, 0.2, 10);
        let mut sim = Simulator::new(tiny_config(Design::MorphCtr));
        sim.freeze_stats();
        for a in t.iter() {
            sim.step(a);
        }
        let stats = sim.finalize();
        assert_eq!(stats.accesses, t.len() as u64);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn early_offchip_reads_happen_in_cosmos() {
        // DRAM-resident working set with revisits: the predictor should
        // learn off-chip and trigger early accesses.
        let t = random_trace(20_000, 1_000_000, 0.0, 8);
        let stats = Simulator::new(tiny_config(Design::Cosmos)).run(&t);
        assert!(
            stats.early_offchip_reads > 0,
            "no early off-chip reads despite DRAM-heavy workload"
        );
    }

    fn counter(tele: &cosmos_telemetry::Telemetry, name: &str) -> u64 {
        let snap = tele.registry().expect("telemetry enabled").snapshot();
        match snap.iter().find(|(n, _)| n == name) {
            Some((_, cosmos_telemetry::metrics::MetricSnapshot::Counter(v))) => *v,
            other => panic!("no counter {name:?}: {other:?}"),
        }
    }

    #[test]
    fn telemetry_hooks_observe_without_changing_results() {
        let t = random_trace(8_000, 500_000, 0.25, 9);
        let baseline = Simulator::new(tiny_config(Design::Cosmos)).run(&t);

        let mut cfg = tiny_config(Design::Cosmos);
        cfg.telemetry = cosmos_telemetry::Telemetry::in_memory();
        let tele = cfg.telemetry.clone();
        let observed = Simulator::new(cfg).run(&t);

        assert_eq!(baseline, observed, "telemetry must not perturb results");

        // Hooks populated: caches, DRAM, RL, Merkle, speculation.
        let ctr = counter(&tele, "cache.ctr.hits") + counter(&tele, "cache.ctr.misses");
        assert_eq!(
            ctr,
            observed.ctr_cache.demand.total(),
            "CTR telemetry mirrors stats"
        );
        assert!(counter(&tele, "cache.l1.hits") > 0);
        assert!(counter(&tele, "dram.accesses") > 0);
        assert!(counter(&tele, "secure.merkle.walks") > 0);
        assert!(
            counter(&tele, "rl.ctr.actions.good") + counter(&tele, "rl.ctr.actions.bad") > 0,
            "CTR RL actions recorded"
        );
        assert_eq!(
            counter(&tele, "sim.spec.issued"),
            observed.early_offchip_reads,
            "speculative issues mirror early off-chip reads"
        );
        assert_eq!(
            counter(&tele, "sim.spec.killed"),
            observed.traffic.killed_speculative,
            "speculative kills mirror killed_speculative"
        );
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        // The tentpole identity: save at N/2, serialize to text, parse,
        // restore into a *fresh* simulator, run the tail — final statistics
        // equal the uninterrupted run exactly, for every design.
        for d in [Design::Np, Design::MorphCtr, Design::Emcc, Design::Cosmos] {
            let t = random_trace(8_000, 80_000, 0.25, 21);
            let half = t.len() / 2;

            let full = Simulator::new(tiny_config(d)).run(&t);

            let mut first = Simulator::new(tiny_config(d));
            for a in &t.as_slice()[..half] {
                first.step(a);
            }
            let text = first.save_state().expect("save").to_string();
            drop(first);

            let parsed = cosmos_common::json::parse(&text).expect("parse");
            let mut resumed = Simulator::new(tiny_config(d));
            resumed.load_state(&parsed).expect("load");
            for a in &t.as_slice()[half..] {
                resumed.step(a);
            }
            assert_eq!(resumed.finalize(), full, "{d}: resumed run diverged");
        }
    }

    #[test]
    fn snapshot_resume_preserves_warmup_baseline() {
        let t = random_trace(4_000, 30_000, 0.2, 22);
        let half = t.len() / 2;

        let mut direct = Simulator::new(tiny_config(Design::Cosmos));
        direct.warmup(t.as_slice()[..half].iter());
        let mut saved = Simulator::new(tiny_config(Design::Cosmos));
        saved.warmup(t.as_slice()[..half].iter());
        let state = saved.save_state().expect("save");

        let mut resumed = Simulator::new(tiny_config(Design::Cosmos));
        resumed.load_state(&state).expect("load");
        for a in &t.as_slice()[half..] {
            direct.step(a);
            resumed.step(a);
        }
        assert_eq!(
            resumed.finalize(),
            direct.finalize(),
            "frozen baseline lost across snapshot"
        );
    }

    #[test]
    fn snapshot_rejects_design_mismatch() {
        let t = random_trace(500, 10_000, 0.2, 23);
        let mut sim = Simulator::new(tiny_config(Design::Cosmos));
        for a in t.iter() {
            sim.step(a);
        }
        let state = sim.save_state().expect("save");

        // NP has no secure path or predictor: both directions must fail
        // loudly rather than silently dropping learned state.
        let err = Simulator::new(tiny_config(Design::Np))
            .load_state(&state)
            .expect_err("NP must reject a Cosmos snapshot");
        assert!(err.contains("secure path"), "unhelpful error: {err}");

        let np_state = {
            let mut np = Simulator::new(tiny_config(Design::Np));
            for a in t.iter() {
                np.step(a);
            }
            np.save_state().expect("save")
        };
        let err = Simulator::new(tiny_config(Design::Cosmos))
            .load_state(&np_state)
            .expect_err("Cosmos must reject an NP snapshot");
        assert!(err.contains("secure path"), "unhelpful error: {err}");
    }

    #[test]
    fn snapshot_serialization_is_stable() {
        // Equal logical states serialize to equal bytes — the property the
        // serve layer's byte-identity smoke rests on.
        let t = random_trace(2_000, 20_000, 0.25, 24);
        let mk = || {
            let mut sim = Simulator::new(tiny_config(Design::Cosmos));
            for a in t.iter() {
                sim.step(a);
            }
            sim.save_state().expect("save").to_string()
        };
        assert_eq!(mk(), mk());

        // And a restored simulator re-saves to the same bytes.
        let text = mk();
        let parsed = cosmos_common::json::parse(&text).expect("parse");
        let mut resumed = Simulator::new(tiny_config(Design::Cosmos));
        resumed.load_state(&parsed).expect("load");
        assert_eq!(resumed.save_state().expect("save").to_string(), text);
    }

    #[test]
    fn telemetry_heatmap_tracks_ctr_sets() {
        let t = random_trace(6_000, 200_000, 0.2, 10);
        let mut cfg = tiny_config(Design::Cosmos);
        cfg.telemetry = cosmos_telemetry::Telemetry::in_memory();
        let tele = cfg.telemetry.clone();
        Simulator::new(cfg).run(&t);

        let heat = tele.heatmap_value().to_string();
        assert!(
            heat.contains("\"windows\""),
            "heatmap export has windows: {heat}"
        );
        assert!(heat.contains("\"sets\""), "heatmap export has set count");
    }
}
