//! The COSMOS secure-memory simulator.
//!
//! This crate wires the substrates together into a trace-driven,
//! latency-composed timing model of the paper's system:
//!
//! - a multi-core cache hierarchy (per-core L1/L2, shared LLC) over the
//!   [`cosmos_cache`] substrate,
//! - the memory-controller secure path: CTR cache (LRU or LCR), Merkle-tree
//!   metadata cache, MAC traffic, counter increments with MorphCtr
//!   re-encryption, over [`cosmos_secure`] and [`cosmos_dram`],
//! - the two RL predictors from [`cosmos_rl`],
//! - six **designs** ([`Design`]): non-protected (NP), the MorphCtr
//!   baseline, an EMCC-like early-CTR variant, COSMOS-DP, COSMOS-CP, and
//!   full COSMOS (paper Table 4),
//! - statistics ([`SimStats`]): IPC, traffic breakdown, CTR cache miss
//!   rate, SMAT (paper Eq. 1–2), predictor quality, and convergence
//!   timelines,
//! - the Table-2 storage-overhead model ([`overhead`]).
//!
//! # Examples
//!
//! ```no_run
//! use cosmos_core::{Design, SimConfig, Simulator};
//! use cosmos_workloads::{TraceSpec, Workload, graph::GraphKernel};
//!
//! let trace = Workload::Graph(GraphKernel::Dfs).generate(&TraceSpec::small_test(1));
//! let config = SimConfig::paper_default(Design::Cosmos);
//! let stats = Simulator::new(config).run(&trace);
//! println!("IPC = {:.3}", stats.ipc());
//! ```

pub mod check;
pub mod config;
pub mod estimate;
pub mod hierarchy;
pub mod overhead;
pub mod secure_path;
pub mod simulator;
pub mod smat;
pub mod stats;
pub mod timing;

pub use check::SecureObserver;
pub use config::{Design, SimConfig};
pub use estimate::StatsEstimate;
pub use simulator::Simulator;
pub use stats::{SimStats, TimelinePoint, TrafficBreakdown};
