//! Storage-overhead model (paper Table 2).

use crate::config::SimConfig;
use cosmos_common::LINE_SIZE;

/// One component of the COSMOS on-chip storage budget.
#[derive(Clone, Debug, PartialEq)]
pub struct OverheadComponent {
    /// Component name (matches Table 2).
    pub name: &'static str,
    /// Entry count.
    pub entries: u64,
    /// Bits per entry.
    pub bits_per_entry: u64,
    /// Total size in bytes.
    pub bytes: u64,
}

/// The full Table-2 breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct StorageOverhead {
    /// Per-component breakdown.
    pub components: Vec<OverheadComponent>,
    /// Total bytes.
    pub total_bytes: u64,
}

impl StorageOverhead {
    /// Total in KiB.
    pub fn total_kib(&self) -> f64 {
        self.total_bytes as f64 / 1024.0
    }
}

/// Computes the COSMOS storage overhead for `config` (paper Table 2).
///
/// - Data Q-Table: `num_states` entries × 16 bits (two 8-bit Q-values),
/// - CTR Q-Table: likewise,
/// - CET: `cet_entries` × 65 bits (64-bit address + 1-bit prediction),
/// - LCR-CTR cache: 9 extra bits per cache line (1-bit prediction +
///   8-bit score).
pub fn storage_overhead(config: &SimConfig) -> StorageOverhead {
    let q_bits = 16u64;
    let mut components = Vec::new();
    let mut push = |name, entries: u64, bits: u64| {
        components.push(OverheadComponent {
            name,
            entries,
            bits_per_entry: bits,
            bytes: (entries * bits).div_ceil(8),
        });
    };
    if config.design.has_data_predictor() {
        push("Data Q-Table", config.data_rl.num_states as u64, q_bits);
    }
    if config.design.has_locality_predictor() {
        push("CTR Q-Table", config.ctr_rl.num_states as u64, q_bits);
        push("CET", config.cet_entries as u64, 65);
        let ctr_lines = (config.ctr_cache.size_bytes / LINE_SIZE) as u64;
        push("LCR-CTR cache", ctr_lines, 9);
    }
    let total_bytes = components.iter().map(|c| c.bytes).sum();
    StorageOverhead {
        components,
        total_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    #[test]
    fn full_cosmos_matches_table2_structure() {
        let cfg = SimConfig::paper_default(Design::Cosmos);
        let o = storage_overhead(&cfg);
        let names: Vec<_> = o.components.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            ["Data Q-Table", "CTR Q-Table", "CET", "LCR-CTR cache"]
        );
        // Q-tables: 16384 × 16 bits = 32 KiB each (Table 2).
        assert_eq!(o.components[0].bytes, 32 * 1024);
        assert_eq!(o.components[1].bytes, 32 * 1024);
        // CET: 8192 × 65 bits = 66,560 B = 65 KiB (the paper reports 66 KB).
        assert_eq!(o.components[2].bytes, 8192 * 65 / 8);
        // Total lands near the paper's 147 KB (the paper rounds per
        // component and assumes a larger LCR line count; see EXPERIMENTS.md).
        let kib = o.total_kib();
        assert!(kib > 125.0 && kib < 155.0, "total {kib:.1} KiB");
    }

    #[test]
    fn np_has_zero_overhead() {
        let cfg = SimConfig::paper_default(Design::Np);
        assert_eq!(storage_overhead(&cfg).total_bytes, 0);
    }

    #[test]
    fn dp_only_has_one_qtable() {
        let cfg = SimConfig::paper_default(Design::CosmosDp);
        let o = storage_overhead(&cfg);
        assert_eq!(o.components.len(), 1);
        assert_eq!(o.total_bytes, 32 * 1024);
    }
}
