//! Observation hooks for external correctness checkers.
//!
//! The `cosmos-verify` crate runs trivially-correct shadow models (a naive
//! MRU-list cache, a dense counter store, a replayed Merkle tree) in
//! lockstep with the real simulator. To do that without perturbing the
//! simulation, [`SecurePath`](crate::secure_path::SecurePath) optionally
//! carries a [`SecureObserver`] that is *told* about every metadata-cache
//! access and counter increment as it happens. The observer is pure
//! output: it cannot influence timing, replacement, or statistics, so a
//! checked run produces byte-identical results to an unchecked one.
//!
//! When no observer is attached (the default), the hooks cost one
//! always-false branch per event.

use cosmos_cache::Eviction;
use cosmos_common::LineAddr;

/// Receives secure-path events in simulation order.
///
/// All methods have empty default bodies so an observer only implements
/// the events it cares about.
pub trait SecureObserver {
    /// A demand access to the CTR cache (read or write path), with the
    /// real cache's outcome: `hit` and any eviction the fill caused.
    fn ctr_access(
        &mut self,
        ctr_line: LineAddr,
        write: bool,
        hit: bool,
        evicted: Option<Eviction>,
    ) {
        let _ = (ctr_line, write, hit, evicted);
    }

    /// A prefetch fill into the CTR cache (never a demand access; the line
    /// was checked non-resident first).
    fn ctr_prefetch(&mut self, ctr_line: LineAddr, evicted: Option<Eviction>) {
        let _ = (ctr_line, evicted);
    }

    /// The write counter of `data_line` was incremented (a data writeback
    /// reached the secure path).
    fn ctr_increment(&mut self, data_line: LineAddr) {
        let _ = data_line;
    }

    /// An access to the MT metadata cache, with the real cache's outcome.
    fn mt_access(&mut self, node: LineAddr, write: bool, hit: bool, evicted: Option<Eviction>) {
        let _ = (node, write, hit, evicted);
    }
}
