//! The event-driven stepping core: per-core ready timelines.
//!
//! The simulator advances time only at access boundaries. Each core carries
//! a *ready cycle* — the time its next instruction may issue — and every
//! access maps to three O(1) timeline operations:
//!
//! 1. [`CoreTimeline::issue`] jumps the core past its instruction gap in a
//!    single addition (idle cycles between memory accesses are skipped, not
//!    stepped),
//! 2. the component chain (hierarchy → secure path → DRAM, each a
//!    completion-time function, the DRAM banks being
//!    [`cosmos_common::timing::ServiceQueue`]s) resolves the access to a
//!    completion cycle, with parallel legs joined by `max`,
//! 3. [`CoreTimeline::retire`] commits the completion, which may only move
//!    the core's clock forward.
//!
//! Independent accesses batch naturally: cores interleave without any
//! global ordering constraint beyond the shared component queues, so a
//! trace touching idle components costs O(accesses), never O(cycles).

use cosmos_common::Cycle;

/// Per-core ready cycles with O(1) idle-cycle skipping.
///
/// # Examples
///
/// ```
/// use cosmos_core::timing::CoreTimeline;
/// use cosmos_common::Cycle;
/// let mut t = CoreTimeline::new(2);
/// let issue = t.issue(0, 1_000_000); // million-cycle gap: one addition
/// assert_eq!(issue, Cycle::new(1_000_000));
/// t.retire(0, issue + 40);
/// assert_eq!(t.horizon(), 1_000_040);
/// ```
#[derive(Clone, Debug)]
pub struct CoreTimeline {
    ready: Vec<Cycle>,
}

impl CoreTimeline {
    /// All cores ready at cycle zero.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "timeline needs at least one core");
        Self {
            ready: vec![Cycle::ZERO; cores],
        }
    }

    /// Number of cores tracked.
    pub fn cores(&self) -> usize {
        self.ready.len()
    }

    /// When `core` issues its next access after `inst_gap` non-memory
    /// instructions (1 cycle each): the idle gap is skipped in one step.
    // cosmos-lint: hot
    #[inline]
    pub fn issue(&self, core: usize, inst_gap: u64) -> Cycle {
        self.ready[core] + inst_gap
    }

    /// Commits an access completion: `core` is next ready at `done`.
    ///
    /// Ready cycles are monotone per core — a completion can never move a
    /// core's clock backwards (debug-asserted).
    // cosmos-lint: hot
    #[inline]
    pub fn retire(&mut self, core: usize, done: Cycle) {
        debug_assert!(
            done >= self.ready[core],
            "core {core} retired backwards: {done:?} < {:?}",
            self.ready[core]
        );
        self.ready[core] = done;
    }

    /// The ready cycle of `core`.
    #[inline]
    pub fn now(&self, core: usize) -> Cycle {
        self.ready[core]
    }

    /// All per-core ready cycles.
    pub fn ready(&self) -> &[Cycle] {
        &self.ready
    }

    /// The latest ready cycle across cores — total elapsed time.
    pub fn horizon(&self) -> u64 {
        self.ready.iter().map(|c| c.value()).max().unwrap_or(0)
    }

    /// Serializes the per-core ready cycles for snapshots.
    pub fn save_state(&self) -> cosmos_common::json::Value {
        use cosmos_common::json::codec;
        cosmos_common::json!({
            "ready": (codec::from_u64s(self.ready.iter().map(|c| c.value()))),
        })
    }

    /// Restores state produced by [`CoreTimeline::save_state`] into a
    /// timeline with the same core count.
    pub fn load_state(&mut self, v: &cosmos_common::json::Value) -> Result<(), String> {
        use cosmos_common::json::codec;
        let ready = codec::u64_array(v, "ready")?;
        codec::check_len("ready", ready.len(), self.ready.len())?;
        self.ready = ready.into_iter().map(Cycle::new).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_common::timing::ServiceQueue;

    #[test]
    fn issue_skips_idle_gaps_in_one_step() {
        let t = CoreTimeline::new(1);
        assert_eq!(t.issue(0, 0), Cycle::ZERO);
        assert_eq!(t.issue(0, u32::MAX as u64), Cycle::new(u32::MAX as u64));
    }

    #[test]
    fn cores_are_independent() {
        let mut t = CoreTimeline::new(3);
        t.retire(0, Cycle::new(500));
        t.retire(2, Cycle::new(90));
        assert_eq!(t.now(0), Cycle::new(500));
        assert_eq!(t.now(1), Cycle::ZERO);
        assert_eq!(t.now(2), Cycle::new(90));
        assert_eq!(t.horizon(), 500);
        assert_eq!(t.ready().len(), 3);
    }

    #[test]
    fn idle_bursts_preserve_ready_cycle_monotonicity() {
        // Drive a core through alternating dense phases and huge idle
        // bursts against a shared component queue: the per-core ready
        // cycle must be non-decreasing throughout, and a post-burst access
        // must issue exactly at ready + gap (idle cycles skipped, not
        // accumulated as queue backlog).
        let mut t = CoreTimeline::new(2);
        let mut component = ServiceQueue::new();
        let mut prev = [Cycle::ZERO; 2];
        for round in 0..100u64 {
            let core = (round % 2) as usize;
            let gap = if round % 5 == 0 { 10_000_000 } else { 3 };
            let issue = t.issue(core, gap);
            assert_eq!(issue, prev[core] + gap, "issue must be ready + gap");
            let served = component.serve(issue, 25);
            t.retire(core, served.done);
            assert!(t.now(core) >= prev[core], "ready cycle went backwards");
            if gap == 10_000_000 {
                // After a burst the shared queue has long drained: the
                // access starts at issue, paying zero queue delay.
                assert_eq!(served.start, issue, "idle burst leaked into queue");
            }
            prev[core] = t.now(core);
        }
        assert_eq!(t.horizon(), prev[0].value().max(prev[1].value()));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        CoreTimeline::new(0);
    }
}
