//! RL-substrate benchmarks: Q-table updates and full predictor steps —
//! these run on every L1 miss / CTR access, so their software cost bounds
//! simulator throughput (the modeled hardware cost is 1 cycle, off the
//! critical path).

use cosmos_bench::{criterion_group, criterion_main, Criterion, Throughput};
use cosmos_common::{LineAddr, PhysAddr, SplitMix64};
use cosmos_rl::params::RlParams;
use cosmos_rl::{CtrLocalityPredictor, DataLocation, DataLocationPredictor, QTable};
use std::hint::black_box;

fn bench_rl(c: &mut Criterion) {
    let mut g = c.benchmark_group("rl");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));

    g.bench_function("qtable_update", |b| {
        let mut q = QTable::new(16_384);
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            for _ in 0..n {
                let s = rng.next_index(16_384);
                q.update_toward(s, 1, black_box(10.0), 0.09);
            }
            q.q(0, 0)
        })
    });

    g.bench_function("qtable_pair_argmax", |b| {
        let mut q = QTable::new(16_384);
        let mut rng = SplitMix64::new(7);
        for _ in 0..16_384 {
            let s = rng.next_index(16_384);
            q.update_toward(s, rng.next_index(2), 5.0, 0.5);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..n {
                let s = rng.next_index(16_384);
                let [a, bq] = q.pair(s);
                acc += usize::from(bq > a);
            }
            acc
        })
    });

    g.bench_function("data_predictor_step", |b| {
        b.iter(|| {
            let mut p = DataLocationPredictor::new(RlParams::data_defaults(), 5);
            let mut rng = SplitMix64::new(2);
            for _ in 0..n {
                let addr = PhysAddr::new(rng.next_below(1 << 30));
                let pred = p.predict(addr);
                let actual = if rng.chance(0.6) {
                    DataLocation::OffChip
                } else {
                    DataLocation::OnChip
                };
                p.learn(addr, pred, actual);
            }
            p.stats().total()
        })
    });

    // The simulator's actual path: the state index is hashed once by
    // `predict_with_state` and handed back to `learn_at`, instead of
    // re-hashing the address on the learn side.
    g.bench_function("data_predictor_step_shared_state", |b| {
        b.iter(|| {
            let mut p = DataLocationPredictor::new(RlParams::data_defaults(), 5);
            let mut rng = SplitMix64::new(2);
            for _ in 0..n {
                let addr = PhysAddr::new(rng.next_below(1 << 30));
                let (pred, s) = p.predict_with_state(addr);
                let actual = if rng.chance(0.6) {
                    DataLocation::OffChip
                } else {
                    DataLocation::OnChip
                };
                p.learn_at(s, pred, actual);
            }
            p.stats().total()
        })
    });

    g.bench_function("locality_classify", |b| {
        b.iter(|| {
            let mut p = CtrLocalityPredictor::new(RlParams::ctr_defaults(), 8192, 0, 3);
            let mut rng = SplitMix64::new(4);
            for _ in 0..n {
                let ctr = LineAddr::new((1 << 34) + rng.next_below(1 << 16));
                black_box(p.classify(ctr));
            }
            p.stats().predictions
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rl
}
criterion_main!(benches);
