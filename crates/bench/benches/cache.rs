//! Cache-substrate benchmarks: demand-access throughput per replacement
//! policy and prefetcher overheads, on an irregular address stream.

use cosmos_bench::{criterion_group, criterion_main, Criterion, Throughput};
use cosmos_cache::{Cache, CacheConfig, PolicyKind, PrefetcherKind};
use cosmos_common::{LineAddr, SplitMix64};
use std::hint::black_box;

fn stream(n: usize, span: u64, seed: u64) -> Vec<LineAddr> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| LineAddr::new(rng.next_below(span)))
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let accesses = stream(100_000, 1 << 16, 1);
    let mut g = c.benchmark_group("cache_policies");
    g.throughput(Throughput::Elements(accesses.len() as u64));
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Random { seed: 7 },
        PolicyKind::Rrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Mockingjay,
        PolicyKind::Lcr,
    ] {
        g.bench_function(format!("{policy}"), |b| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::new(512 * 1024, 8), policy);
                for &line in &accesses {
                    black_box(cache.access(line, false, None));
                }
                cache.stats().demand.hits()
            })
        });
    }
    g.finish();
}

fn bench_prefetchers(c: &mut Criterion) {
    let accesses = stream(100_000, 1 << 16, 2);
    let mut g = c.benchmark_group("prefetchers");
    g.throughput(Throughput::Elements(accesses.len() as u64));
    for kind in [
        PrefetcherKind::NextLine,
        PrefetcherKind::Stride,
        PrefetcherKind::Berti,
    ] {
        g.bench_function(format!("{kind}"), |b| {
            b.iter(|| {
                let mut pf = kind.build().expect("prefetcher");
                let mut issued = 0usize;
                let mut cands = Vec::with_capacity(8);
                for &line in &accesses {
                    cands.clear();
                    pf.on_access(line, false, &mut cands);
                    issued += cands.len();
                }
                issued
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies, bench_prefetchers
}
criterion_main!(benches);
