//! Microbenchmarks for the crypto substrate: AES-128 block ops, SHA-256
//! hashing, OTP generation, and MAC computation.

use cosmos_bench::{criterion_group, criterion_main, Criterion, Throughput};
use cosmos_common::PhysAddr;
use cosmos_crypto::{aes::Aes128, mac, otp, Sha256};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    let block = [0x5Au8; 16];
    let line = [0xA5u8; 64];

    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
    g.bench_function("aes128_decrypt_block", |b| {
        let ct = aes.encrypt_block(&block);
        b.iter(|| aes.decrypt_block(black_box(&ct)))
    });
    g.throughput(Throughput::Bytes(64));
    g.bench_function("sha256_64B", |b| {
        b.iter(|| Sha256::digest(black_box(&line)))
    });
    g.bench_function("otp_generate_64B", |b| {
        b.iter(|| otp::generate(&aes, black_box(PhysAddr::new(0x1000)), black_box(9)))
    });
    g.bench_function("mac_compute_64B", |b| {
        b.iter(|| mac::compute(black_box(&line), PhysAddr::new(0x1000), 9))
    });
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4KiB", |b| {
        let page = vec![1u8; 4096];
        b.iter(|| Sha256::digest(black_box(&page)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crypto
}
criterion_main!(benches);
