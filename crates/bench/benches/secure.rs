//! Secure-memory substrate benchmarks: counter increments (with MorphCtr
//! morphing), Merkle-tree update/verify, and full functional protected
//! writes/reads.

use cosmos_bench::{criterion_group, criterion_main, Criterion, Throughput};
use cosmos_common::{LineAddr, SplitMix64};
use cosmos_secure::{CounterScheme, CounterStore, MerkleTree, SecureMemory};
use std::hint::black_box;

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("counters");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    for scheme in [
        CounterScheme::Monolithic,
        CounterScheme::Split,
        CounterScheme::MorphCtr,
    ] {
        g.bench_function(format!("increment_{scheme}"), |b| {
            b.iter(|| {
                let mut store = CounterStore::new(scheme);
                let mut rng = SplitMix64::new(1);
                for _ in 0..n {
                    store.increment(LineAddr::new(rng.next_below(1 << 20)));
                }
                store.increments()
            })
        });
    }
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    g.bench_function("update_leaf_4M_tree", |b| {
        let mut tree = MerkleTree::new(4 << 20);
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            let leaf = rng.next_below(4 << 20);
            tree.update_leaf(leaf, black_box([3u8; 32]));
        })
    });
    g.bench_function("verify_leaf_4M_tree", |b| {
        let mut tree = MerkleTree::new(4 << 20);
        tree.update_leaf(77, [9u8; 32]);
        b.iter(|| black_box(tree.verify_leaf(77, [9u8; 32])))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("secure_memory");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("protected_write", |b| {
        let mut m = SecureMemory::new(1 << 30, CounterScheme::MorphCtr, [1u8; 16]);
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            let line = LineAddr::new(rng.next_below(1 << 20));
            m.write(line, black_box(&[0xEEu8; 64]))
        })
    });
    g.bench_function("protected_read", |b| {
        let mut m = SecureMemory::new(1 << 30, CounterScheme::MorphCtr, [1u8; 16]);
        for i in 0..1024u64 {
            m.write(LineAddr::new(i), &[i as u8; 64]);
        }
        let mut rng = SplitMix64::new(4);
        b.iter(|| {
            let line = LineAddr::new(rng.next_below(1024));
            black_box(m.read(line).expect("verified"))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_counters, bench_merkle, bench_engine
}
criterion_main!(benches);
