//! End-to-end simulator benchmarks: accesses-per-second for each design
//! over one irregular trace, plus trace-generation throughput — the
//! numbers that bound how large the figure experiments can scale.

use cosmos_bench::{criterion_group, criterion_main, Criterion, Throughput};
use cosmos_core::{Design, SimConfig, Simulator};
use cosmos_workloads::{graph::GraphKernel, TraceSpec, Workload};
use std::hint::black_box;

fn bench_designs(c: &mut Criterion) {
    let mut spec = TraceSpec::small_test(42);
    spec.accesses = 200_000;
    spec.graph_vertices = 1 << 17;
    let trace = Workload::Graph(GraphKernel::Dfs).generate(&spec);

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for design in [
        Design::Np,
        Design::MorphCtr,
        Design::Emcc,
        Design::CosmosDp,
        Design::CosmosCp,
        Design::Cosmos,
    ] {
        g.bench_function(design.name(), |b| {
            b.iter(|| {
                let stats = Simulator::new(SimConfig::paper_default(design)).run(&trace);
                black_box(stats.cycles)
            })
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    let mut spec = TraceSpec::small_test(42);
    spec.accesses = 200_000;
    spec.graph_vertices = 1 << 16;
    g.throughput(Throughput::Elements(spec.accesses as u64));
    for w in [
        Workload::Graph(GraphKernel::Bfs),
        Workload::Spec(cosmos_workloads::spec::SpecKind::Mcf),
        Workload::Ml(cosmos_workloads::ml::MlModel::Bert),
    ] {
        g.bench_function(w.name(), |b| b.iter(|| black_box(w.generate(&spec)).len()));
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_designs, bench_trace_generation
}
criterion_main!(benches);
