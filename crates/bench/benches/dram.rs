//! DRAM-model benchmarks: request throughput for streaming vs. random
//! address patterns, bank model vs. fixed latency.

use cosmos_bench::{criterion_group, criterion_main, Criterion, Throughput};
use cosmos_common::{Cycle, LineAddr, SplitMix64};
use cosmos_dram::{Dram, DramConfig};
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("streaming_bank_model", |b| {
        b.iter(|| {
            let mut dram = Dram::new(DramConfig::ddr4_2400());
            let mut now = Cycle::ZERO;
            for i in 0..n {
                now = black_box(dram.access(LineAddr::new(i), now, false));
            }
            dram.stats().row_hits
        })
    });
    g.bench_function("random_bank_model", |b| {
        b.iter(|| {
            let mut dram = Dram::new(DramConfig::ddr4_2400());
            let mut rng = SplitMix64::new(3);
            let mut now = Cycle::ZERO;
            for _ in 0..n {
                now = black_box(dram.access(LineAddr::new(rng.next_below(1 << 24)), now, false));
            }
            dram.stats().row_conflicts
        })
    });
    g.bench_function("random_fixed_latency", |b| {
        b.iter(|| {
            let mut dram = Dram::new(DramConfig::fixed_latency());
            let mut rng = SplitMix64::new(3);
            let mut now = Cycle::ZERO;
            for _ in 0..n {
                now = black_box(dram.access(LineAddr::new(rng.next_below(1 << 24)), now, false));
            }
            dram.stats().reads
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dram
}
criterion_main!(benches);
