//! Criterion benchmark harness for COSMOS (see `benches/`).
