//! Self-timed benchmark harness for COSMOS (see `benches/`).
//!
//! The container build has no network access to crates.io, so the usual
//! `criterion` dev-dependency is unavailable. This module provides the
//! small slice of its API the benches use — `Criterion`, `Throughput`,
//! benchmark groups, `b.iter(..)`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by plain [`std::time::Instant`]
//! timing: per benchmark it calibrates an iteration count targeting
//! ~10 ms per sample, takes `sample_size` samples, and reports the
//! median time per iteration plus derived throughput.
//!
//! Numbers from this harness are indicative (no outlier rejection, no
//! statistical tests); for the tracked end-to-end figure see the
//! `sim_throughput` experiment binary, which persists `BENCH_sim.json`.

// cosmos-lint: allow-file(D2): this crate IS the wall-clock bench harness; timings are
// reported as measurements, never fed back into simulated state.
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration work unit, used to derive a throughput figure.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness handle; mirrors `criterion::Criterion`.
#[derive(Clone, Copy, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-iteration work unit for subsequent `bench_function`s.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        let per_iter = b.median_ns;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format_rate(n as f64 / (per_iter * 1e-9), "elem/s"),
            Throughput::Bytes(n) => format_rate(n as f64 / (per_iter * 1e-9), "B/s"),
        });
        println!(
            "{}/{:<28} {:>14}/iter{}",
            self.name,
            id,
            format_ns(per_iter),
            rate.map(|r| format!("   {r}")).unwrap_or_default()
        );
        self
    }

    /// Group separator in the output; `criterion` writes summaries here.
    pub fn finish(self) {
        println!();
    }
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost across samples.
    ///
    /// One calibration call estimates the cost of a single iteration and
    /// sizes each sample at ~10 ms of work; slow benchmarks (>100 ms per
    /// iteration) are limited to 3 samples so whole-simulator benches
    /// stay tractable.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();

        let target = Duration::from_millis(10);
        let iters = if once >= target {
            1
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let samples = if once > Duration::from_millis(100) {
            self.sample_size.min(3)
        } else {
            self.sample_size
        };

        let mut per_iter_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter_ns[per_iter_ns.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Drop-in for `criterion::criterion_group!`: bundles benchmark functions
/// into one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Drop-in for `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("harness_test");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn formatting_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_rate(2.5e7, "elem/s").starts_with("25.00 M"));
    }
}
