//! Property-based tests for the cache substrate: structural invariants
//! that must hold for every replacement policy under arbitrary access
//! sequences.

use cosmos_cache::{Cache, CacheConfig, LocalityHint, PolicyKind};
use cosmos_common::LineAddr;
use proptest::prelude::*;

const POLICIES: [PolicyKind; 7] = [
    PolicyKind::Lru,
    PolicyKind::Random { seed: 3 },
    PolicyKind::Rrip,
    PolicyKind::Drrip,
    PolicyKind::Ship,
    PolicyKind::Mockingjay,
    PolicyKind::Lcr,
];

fn arb_ops() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..4096, any::<bool>()), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn occupancy_never_exceeds_capacity(ops in arb_ops()) {
        for policy in POLICIES {
            let mut c = Cache::new(CacheConfig::new(4096, 4), policy);
            for &(line, write) in &ops {
                c.access(LineAddr::new(line), write, None);
                prop_assert!(c.occupancy() <= 64, "{policy:?}");
            }
        }
    }

    #[test]
    fn no_duplicate_resident_lines(ops in arb_ops()) {
        for policy in POLICIES {
            let mut c = Cache::new(CacheConfig::new(4096, 4), policy);
            for &(line, write) in &ops {
                c.access(LineAddr::new(line), write, None);
            }
            let mut lines: Vec<u64> = c.resident_lines().map(|l| l.index()).collect();
            let before = lines.len();
            lines.sort_unstable();
            lines.dedup();
            prop_assert_eq!(lines.len(), before, "{:?}", policy);
        }
    }

    #[test]
    fn access_after_access_hits(ops in arb_ops(), probe in 0u64..4096) {
        for policy in POLICIES {
            let mut c = Cache::new(CacheConfig::new(8192, 8), policy);
            for &(line, write) in &ops {
                c.access(LineAddr::new(line), write, None);
            }
            // Immediately repeated access must hit (no policy evicts the
            // line it just touched in a multi-way set).
            c.access(LineAddr::new(probe), false, None);
            let r = c.access(LineAddr::new(probe), false, None);
            prop_assert!(r.hit, "{:?}", policy);
        }
    }

    #[test]
    fn stats_account_every_access(ops in arb_ops()) {
        let mut c = Cache::new(CacheConfig::new(4096, 4), PolicyKind::Lru);
        for &(line, write) in &ops {
            c.access(LineAddr::new(line), write, None);
        }
        prop_assert_eq!(c.stats().demand.total(), ops.len() as u64);
        // Fills = misses; evictions can't exceed fills.
        prop_assert!(c.stats().evictions <= c.stats().demand.misses());
        prop_assert!(c.stats().writebacks <= c.stats().evictions);
    }

    #[test]
    fn eviction_reports_previously_resident_line(ops in arb_ops()) {
        let mut c = Cache::new(CacheConfig::new(1024, 2), PolicyKind::Lru);
        let mut resident = std::collections::HashSet::new();
        for &(line, write) in &ops {
            let r = c.access(LineAddr::new(line), write, None);
            if let Some(ev) = r.evicted {
                prop_assert!(resident.remove(&ev.line.index()),
                    "evicted line {} was not resident", ev.line.index());
            }
            resident.insert(line);
        }
    }

    #[test]
    fn lcr_hint_updates_are_safe(ops in prop::collection::vec(
        (0u64..512, any::<bool>(), 0u8..=255), 1..300))
    {
        let mut c = Cache::new(CacheConfig::new(2048, 4), PolicyKind::Lcr);
        for &(line, good, score) in &ops {
            c.access(
                LineAddr::new(line),
                false,
                Some(LocalityHint { good, score }),
            );
        }
        prop_assert!(c.occupancy() <= 32);
    }

    #[test]
    fn invalidate_then_access_misses(lines in prop::collection::vec(0u64..256, 1..50)) {
        let mut c = Cache::new(CacheConfig::new(4096, 4), PolicyKind::Lru);
        for &l in &lines {
            c.access(LineAddr::new(l), false, None);
        }
        let target = LineAddr::new(lines[0]);
        c.invalidate(target);
        prop_assert!(!c.contains(target));
    }
}
