//! The generic set-associative cache.
//!
//! Tag state is kept in structure-of-arrays form — one contiguous `u64`
//! tag array (with a sentinel for invalid ways) plus parallel flag/score
//! byte arrays — so the way-lookup scan on the access hot path touches one
//! dense cache line per set instead of striding over fat AoS entries. The
//! two policies on the simulator's hot paths (LRU for most caches, LCR for
//! the COSMOS CTR cache) are dispatched inline through [`PolicyImpl`],
//! sharing one recency array; every other policy goes through the boxed
//! [`ReplacementPolicy`] object exactly as before.

use crate::config::CacheConfig;
use crate::policies::{Lcr, Lru, PolicyKind, ReplacementPolicy, WayView};
use crate::stats::CacheStats;
use cosmos_common::LineAddr;
use cosmos_telemetry::metrics::Counter;
use cosmos_telemetry::Telemetry;

/// Telemetry handles for one cache instance, resolved once at attach time
/// (`cache.<role>.*` in the registry) so the access path pays a single
/// branch plus relaxed atomic adds. Observation only: never consulted for
/// replacement or timing.
struct TeleCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    writebacks: Counter,
}

/// An RL-provided locality annotation attached to a cached line, used by the
/// LCR replacement policy (paper §4.3: a 1-bit flag + 8-bit score per line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalityHint {
    /// `true` = predicted good locality.
    pub good: bool,
    /// Quantized Q-value magnitude backing the prediction (0–255).
    pub score: u8,
}

/// What happened to an evicted line.
///
/// Besides the line and its dirtiness, an eviction carries the victim's
/// recency provenance off the cache's access clock — when it was filled,
/// when it was last touched, and whether the chosen victim deviates from
/// what strict LRU would have picked. These stamps are identical whichever
/// dispatch path (inline or boxed) selected the victim: they come from
/// cache-owned state, not from the policy object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// The line that was evicted.
    pub line: LineAddr,
    /// Whether it was dirty (needs a writeback).
    pub dirty: bool,
    /// Access-clock value when the victim was (last) filled.
    pub fill_at: u64,
    /// Access-clock value when the victim was last touched.
    pub last_touch_at: u64,
    /// Whether the victim differs from the least-recently-touched way of
    /// its set — `true` marks a policy-steered (non-LRU) choice.
    pub lru_deviated: bool,
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// A line evicted to make room (only possible on a miss fill).
    pub evicted: Option<Eviction>,
    /// Whether the hit line had been brought in by a prefetch and this is
    /// its first demand use.
    pub first_use_of_prefetch: bool,
}

/// Sentinel tag for an invalid way. `CacheConfig::tag_of` returns the full
/// line index, and line indices stay far below `u64::MAX` (metadata tops
/// out under 2^43), so the sentinel can never collide with a real tag.
const INVALID_TAG: u64 = u64::MAX;

/// Per-way flag bits (parallel to the tag array).
const F_DIRTY: u8 = 1 << 0;
const F_PREFETCHED: u8 = 1 << 1;
const F_DEMAND_USED: u8 = 1 << 2;
const F_HINT_PRESENT: u8 = 1 << 3;
const F_HINT_GOOD: u8 = 1 << 4;

/// Replacement-policy dispatch: the two hot policies are inlined (no
/// virtual calls, no `WayView` materialization); everything else keeps the
/// boxed trait object. Recency state (clock and per-way stamps) is owned
/// by the [`Cache`] itself and maintained for *every* policy, so eviction
/// provenance and LRU-deviation flags are policy-independent.
enum PolicyImpl {
    /// True LRU, equivalent to [`Lru`].
    Lru,
    /// Locality-Centric Replacement, equivalent to [`Lcr`].
    Lcr,
    /// Any other policy, behind the trait object.
    Boxed(Box<dyn ReplacementPolicy>),
}

impl PolicyImpl {
    fn name(&self) -> &'static str {
        match self {
            PolicyImpl::Lru => "LRU",
            PolicyImpl::Lcr => "LCR",
            PolicyImpl::Boxed(p) => p.name(),
        }
    }
}

/// A set-associative cache with a pluggable replacement policy.
///
/// The cache is *line-granular*: callers pass [`LineAddr`]s. It models tag
/// state only (no data payload — the functional secure-memory layer keeps
/// payloads in its own store).
///
/// # Examples
///
/// ```
/// use cosmos_cache::{Cache, CacheConfig, PolicyKind};
/// use cosmos_common::LineAddr;
/// let mut c = Cache::new(CacheConfig::new(8192, 2), PolicyKind::Lru);
/// c.access(LineAddr::new(1), true, None);
/// assert!(c.contains(LineAddr::new(1)));
/// ```
pub struct Cache {
    config: CacheConfig,
    /// Per-way tags ([`INVALID_TAG`] = empty way), SoA with `flags`/`scores`.
    tags: Vec<u64>,
    flags: Vec<u8>,
    /// Locality-hint scores (meaningful only where `F_HINT_PRESENT` is set).
    scores: Vec<u8>,
    policy: PolicyImpl,
    stats: CacheStats,
    /// Logical access clock: +1 per touch (hit or fill). Drives the
    /// cache-owned recency stamps below for every policy, inline or boxed.
    clock: u64,
    /// Per-way last-touch stamps off `clock` (0 = never touched).
    last_touch: Vec<u64>,
    /// Per-way fill stamps off `clock` (the touch that installed the line).
    fill_at: Vec<u64>,
    /// Valid-line count, maintained on fill/invalidate so `occupancy` is
    /// O(1) instead of a scan over every line.
    occupied: usize,
    /// Reusable victim-selection buffer for boxed policies: `fill_internal`
    /// runs on every miss, and rebuilding a fresh `Vec<WayView>` per
    /// eviction was the hottest allocation in the simulator.
    scratch: Vec<WayView>,
    tele: Option<Box<TeleCounters>>,
}

impl core::fmt::Debug for Cache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Cache")
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cache {
    /// Creates a cache with the given geometry and replacement policy.
    pub fn new(config: CacheConfig, policy: PolicyKind) -> Self {
        let policy = match policy {
            PolicyKind::Lru => PolicyImpl::Lru,
            PolicyKind::Lcr => PolicyImpl::Lcr,
            other => PolicyImpl::Boxed(other.build(config.num_sets(), config.ways())),
        };
        Self::with_impl(config, policy)
    }

    /// Creates a cache with a custom policy object.
    pub fn with_policy(config: CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        Self::with_impl(config, PolicyImpl::Boxed(policy))
    }

    fn with_impl(config: CacheConfig, policy: PolicyImpl) -> Self {
        assert!(
            config.index().is_uniform() || !matches!(policy, PolicyImpl::Boxed(_)),
            "skewed-associative indexing supports the inline LRU/LCR policies only \
             (boxed policies reason in set/way coordinates that skewing breaks)"
        );
        Self {
            config,
            tags: vec![INVALID_TAG; config.num_lines()],
            flags: vec![0; config.num_lines()],
            scores: vec![0; config.num_lines()],
            policy,
            stats: CacheStats::default(),
            clock: 0,
            last_touch: vec![0; config.num_lines()],
            fill_at: vec![0; config.num_lines()],
            occupied: 0,
            scratch: Vec::with_capacity(config.ways()),
            tele: None,
        }
    }

    /// Advances the access clock and stamps way `idx` as just touched.
    #[inline]
    fn touch(&mut self, idx: usize) {
        self.clock += 1;
        self.last_touch[idx] = self.clock;
    }

    /// Registers this cache's hit/miss/eviction/writeback counters as
    /// `cache.<role>.*` in `telemetry`'s metrics registry. No-op (and no
    /// stored state) when telemetry is disabled.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, role: &str) {
        if let Some(reg) = telemetry.registry() {
            self.tele = Some(Box::new(TeleCounters {
                hits: reg.counter(&format!("cache.{role}.hits")),
                misses: reg.counter(&format!("cache.{role}.misses")),
                evictions: reg.counter(&format!("cache.{role}.evictions")),
                writebacks: reg.counter(&format!("cache.{role}.writebacks")),
            }));
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Non-modifying presence check (no LRU update, no stats).
    pub fn contains(&self, line: LineAddr) -> bool {
        if self.config.index().is_uniform() {
            self.find_way(line).is_some()
        } else {
            self.find_slot_skewed(line.index(), self.config.tag_of(line.index()))
                .is_some()
        }
    }

    /// Performs a demand access: on hit, updates recency; on miss, fills the
    /// line (evicting if needed) and returns the eviction.
    ///
    /// `hint` attaches/refreshes an RL locality annotation (LCR policy); it
    /// is stored on fill and refreshed on hit when provided.
    // cosmos-lint: hot
    pub fn access(
        &mut self,
        line: LineAddr,
        write: bool,
        hint: Option<LocalityHint>,
    ) -> AccessResult {
        let tag = self.config.tag_of(line.index());
        if !self.config.index().is_uniform() {
            return self.access_skewed(line, tag, write, hint);
        }
        let set = self.config.set_of(line.index());
        let base = set * self.config.ways();
        if let Some(way) = self.find_way_in_set(base, tag) {
            let first_use = self.hit_at(base + way, write, hint);
            if let PolicyImpl::Boxed(p) = &mut self.policy {
                p.on_hit(set, way, line);
            }
            return AccessResult {
                hit: true,
                evicted: None,
                first_use_of_prefetch: first_use,
            };
        }
        self.stats.demand.miss();
        if let Some(t) = &self.tele {
            t.misses.inc();
        }
        let evicted = self.fill_internal(set, tag, line, write, hint, false);
        AccessResult {
            hit: false,
            evicted,
            first_use_of_prefetch: false,
        }
    }

    /// Hit-path bookkeeping shared by the uniform and skewed lookup paths:
    /// flag/score updates, demand-hit statistics, and the recency touch.
    /// Returns whether this was the first demand use of a prefetched line.
    // cosmos-lint: hot
    #[inline]
    fn hit_at(&mut self, idx: usize, write: bool, hint: Option<LocalityHint>) -> bool {
        let f = self.flags[idx];
        let first_use = f & F_PREFETCHED != 0 && f & F_DEMAND_USED == 0;
        let mut nf = f | F_DEMAND_USED;
        if write {
            nf |= F_DIRTY;
        }
        if let Some(h) = hint {
            nf |= F_HINT_PRESENT;
            if h.good {
                nf |= F_HINT_GOOD;
            } else {
                nf &= !F_HINT_GOOD;
            }
            self.scores[idx] = h.score;
        }
        self.flags[idx] = nf;
        self.stats.demand.hit();
        if let Some(t) = &self.tele {
            t.hits.inc();
        }
        if first_use {
            self.stats.prefetch_useful += 1;
        }
        self.touch(idx);
        first_use
    }

    /// Inserts a line without touching demand statistics — used for fills
    /// that are not demand misses, e.g. a dirty line evicted from an upper
    /// cache level being installed here. If the line is already resident it
    /// is marked dirty as requested and no fill happens.
    ///
    /// Returns the eviction caused, if any.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        let tag = self.config.tag_of(line.index());
        if !self.config.index().is_uniform() {
            if let Some(idx) = self.find_slot_skewed(line.index(), tag) {
                if dirty {
                    self.flags[idx] |= F_DIRTY;
                }
                self.touch(idx);
                return None;
            }
            return self.fill_skewed(line, tag, dirty, None, false);
        }
        let set = self.config.set_of(line.index());
        let base = set * self.config.ways();
        if let Some(way) = self.find_way_in_set(base, tag) {
            let idx = base + way;
            if dirty {
                self.flags[idx] |= F_DIRTY;
            }
            self.touch(idx);
            if let PolicyImpl::Boxed(p) = &mut self.policy {
                p.on_hit(set, way, line);
            }
            return None;
        }
        self.fill_internal(set, tag, line, dirty, None, false)
    }

    /// Inserts a line brought in by a prefetch (no demand hit/miss counted).
    ///
    /// Returns the eviction caused, if any. A line already present is left
    /// untouched (the prefetch is redundant and counted as such).
    pub fn prefetch_fill(
        &mut self,
        line: LineAddr,
        hint: Option<LocalityHint>,
    ) -> Option<Eviction> {
        let tag = self.config.tag_of(line.index());
        if !self.config.index().is_uniform() {
            if self.find_slot_skewed(line.index(), tag).is_some() {
                self.stats.prefetch_redundant += 1;
                return None;
            }
            self.stats.prefetch_issued += 1;
            return self.fill_skewed(line, tag, false, hint, true);
        }
        let set = self.config.set_of(line.index());
        let base = set * self.config.ways();
        if self.find_way_in_set(base, tag).is_some() {
            self.stats.prefetch_redundant += 1;
            return None;
        }
        self.stats.prefetch_issued += 1;
        self.fill_internal(set, tag, line, false, hint, true)
    }

    /// Removes a line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let tag = self.config.tag_of(line.index());
        let idx = if self.config.index().is_uniform() {
            let set = self.config.set_of(line.index());
            let base = set * self.config.ways();
            let way = self.find_way_in_set(base, tag)?;
            let idx = base + way;
            let reused = self.flags[idx] & F_DEMAND_USED != 0;
            if let PolicyImpl::Boxed(p) = &mut self.policy {
                p.on_evict(set, way, line, reused);
            }
            idx
        } else {
            self.find_slot_skewed(line.index(), tag)?
        };
        let dirty = self.flags[idx] & F_DIRTY != 0;
        self.tags[idx] = INVALID_TAG;
        self.flags[idx] = 0;
        self.scores[idx] = 0;
        self.occupied -= 1;
        Some(dirty)
    }

    /// Number of valid lines currently cached (O(1): maintained on
    /// fill/invalidate rather than scanned).
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Iterates over all valid resident lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.tags
            .iter()
            .filter(|&&t| t != INVALID_TAG)
            .map(|&t| LineAddr::new(t))
    }

    /// The cache's logical access clock: one tick per touch (hit or
    /// fill). Eviction stamps ([`Eviction::fill_at`] /
    /// [`Eviction::last_touch_at`]) are values of this clock, so callers
    /// can relate accesses and evictions on one deterministic timeline.
    pub fn access_clock(&self) -> u64 {
        self.clock
    }

    /// Resident lines with their dirty bits, ordered least- to
    /// most-recently touched — the priming order for shadow models
    /// attached to a restored simulator. Boxed policies are rejected like
    /// in [`Cache::save_state`] (their victim choice may not follow the
    /// cache-owned stamps).
    pub fn resident_entries_lru_to_mru(&self) -> Result<Vec<(LineAddr, bool)>, String> {
        if let PolicyImpl::Boxed(p) = &self.policy {
            return Err(format!(
                "recency ordering unavailable for boxed replacement policy `{}`",
                p.name()
            ));
        }
        let mut entries: Vec<(u64, LineAddr, bool)> = self
            .tags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t != INVALID_TAG)
            .map(|(idx, &t)| {
                (
                    self.last_touch[idx],
                    LineAddr::new(t),
                    self.flags[idx] & F_DIRTY != 0,
                )
            })
            .collect();
        entries.sort_unstable_by_key(|&(touch, _, _)| touch);
        Ok(entries
            .into_iter()
            .map(|(_, line, dirty)| (line, dirty))
            .collect())
    }

    /// Serializes the cache's full replacement-visible state — tags, flag
    /// bits, hint scores, recency stamps, and statistics — for snapshots.
    ///
    /// Only the inline LRU/LCR policies are supported: boxed policy objects
    /// carry private state behind the trait object and are rejected with an
    /// error rather than silently half-saved. (Snapshotting allocates; it is
    /// never called from hot paths.)
    pub fn save_state(&self) -> Result<cosmos_common::json::Value, String> {
        use cosmos_common::json::codec;
        if let PolicyImpl::Boxed(p) = &self.policy {
            return Err(format!(
                "snapshot unsupported for boxed replacement policy `{}`",
                p.name()
            ));
        }
        Ok(cosmos_common::json!({
            "policy": (self.policy.name()),
            "tags": (codec::from_u64s(self.tags.iter().copied())),
            "flags": (codec::from_u64s(self.flags.iter().map(|&f| u64::from(f)))),
            "scores": (codec::from_u64s(self.scores.iter().map(|&s| u64::from(s)))),
            "occupied": (self.occupied as u64),
            "clock": (self.clock),
            "last_touch": (codec::from_u64s(self.last_touch.iter().copied())),
            "fill_at": (codec::from_u64s(self.fill_at.iter().copied())),
            "stats": (self.stats.to_json()),
        }))
    }

    /// Restores state produced by [`Cache::save_state`] into a cache built
    /// with the *same* geometry and policy. Subsequent behavior is
    /// indistinguishable from the original instance.
    ///
    /// Rejects (leaving `self` unspecified but memory-safe): policy-name
    /// mismatches, array lengths that disagree with the constructed
    /// geometry, and occupancy counts inconsistent with the tag array.
    pub fn load_state(&mut self, v: &cosmos_common::json::Value) -> Result<(), String> {
        use cosmos_common::json::codec;
        let saved_policy = codec::str_field(v, "policy")?;
        if saved_policy != self.policy.name() {
            return Err(format!(
                "snapshot policy `{saved_policy}` does not match constructed policy `{}`",
                self.policy.name()
            ));
        }
        let lines = self.config.num_lines();
        let tags = codec::u64_array(v, "tags")?;
        codec::check_len("tags", tags.len(), lines)?;
        let flags = codec::u8_array(v, "flags")?;
        codec::check_len("flags", flags.len(), lines)?;
        let scores = codec::u8_array(v, "scores")?;
        codec::check_len("scores", scores.len(), lines)?;
        let last_touch = codec::u64_array(v, "last_touch")?;
        codec::check_len("last_touch", last_touch.len(), lines)?;
        let fill_at = codec::u64_array(v, "fill_at")?;
        codec::check_len("fill_at", fill_at.len(), lines)?;
        let occupied = codec::usize_field(v, "occupied")?;
        let valid = tags.iter().filter(|&&t| t != INVALID_TAG).count();
        if occupied != valid {
            return Err(format!(
                "snapshot occupancy {occupied} disagrees with {valid} valid tags"
            ));
        }
        let clock = codec::u64_field(v, "clock")?;
        let stats = CacheStats::from_json(codec::field(v, "stats")?)?;
        if let PolicyImpl::Boxed(p) = &self.policy {
            return Err(format!(
                "snapshot unsupported for boxed replacement policy `{}`",
                p.name()
            ));
        }
        self.clock = clock;
        self.last_touch = last_touch;
        self.fill_at = fill_at;
        self.tags = tags;
        self.flags = flags;
        self.scores = scores;
        self.occupied = occupied;
        self.stats = stats;
        Ok(())
    }

    fn find_way(&self, line: LineAddr) -> Option<usize> {
        let set = self.config.set_of(line.index());
        let tag = self.config.tag_of(line.index());
        self.find_way_in_set(set * self.config.ways(), tag)
    }

    /// Way lookup with the set/tag decomposition already done — the public
    /// entry points compute `set`/`tag` exactly once and share them with
    /// the fill path instead of re-deriving them per lookup. Invalid ways
    /// hold [`INVALID_TAG`], which no real line can equal, so the scan is a
    /// single branch-free compare per way over one dense array.
    #[inline]
    fn find_way_in_set(&self, base: usize, tag: u64) -> Option<usize> {
        let set = &self.tags[base..base + self.config.ways()];
        set.iter().position(|&t| t == tag)
    }

    /// The locality hint stored at `idx`, if any (test observability).
    #[cfg(test)]
    fn hint_at(&self, idx: usize) -> Option<LocalityHint> {
        (self.flags[idx] & F_HINT_PRESENT != 0).then(|| LocalityHint {
            good: self.flags[idx] & F_HINT_GOOD != 0,
            score: self.scores[idx],
        })
    }

    // cosmos-lint: hot
    fn fill_internal(
        &mut self,
        set: usize,
        tag: u64,
        line: LineAddr,
        write: bool,
        hint: Option<LocalityHint>,
        prefetched: bool,
    ) -> Option<Eviction> {
        let ways = self.config.ways();
        let base = set * ways;
        // Prefer an invalid way.
        let invalid = self.tags[base..base + ways]
            .iter()
            .position(|&t| t == INVALID_TAG);
        let (way, eviction) = match invalid {
            Some(w) => {
                self.occupied += 1;
                (w, None)
            }
            None => {
                let victim = self.choose_victim(set, base, ways);
                debug_assert!(victim < ways, "victim way {victim} >= {ways}");
                // First-minimum over the cache-owned stamps: the way strict
                // LRU would evict. A victim elsewhere is a policy deviation.
                let touches = &self.last_touch[base..base + ways];
                let mut lru_way = 0;
                for (w, &t) in touches.iter().enumerate().skip(1) {
                    if t < touches[lru_way] {
                        lru_way = w;
                    }
                }
                let idx = base + victim;
                let reused = self.flags[idx] & F_DEMAND_USED != 0;
                let victim_line = LineAddr::new(self.tags[idx]);
                if let PolicyImpl::Boxed(p) = &mut self.policy {
                    p.on_evict(set, victim, victim_line, reused);
                }
                let ev = self.evict_bookkeeping(idx, victim != lru_way);
                (victim, Some(ev))
            }
        };
        let idx = base + way;
        self.install_at(idx, tag, write, hint, prefetched);
        if let PolicyImpl::Boxed(p) = &mut self.policy {
            p.on_fill(set, way, line, hint);
        }
        eviction
    }

    /// Eviction bookkeeping shared by the uniform and skewed fill paths:
    /// builds the [`Eviction`] record off the cache-owned stamps and
    /// updates eviction/writeback/prefetch statistics. Does not clear the
    /// slot — the caller overwrites it with the incoming line.
    // cosmos-lint: hot
    fn evict_bookkeeping(&mut self, idx: usize, lru_deviated: bool) -> Eviction {
        let ev = Eviction {
            line: LineAddr::new(self.tags[idx]),
            dirty: self.flags[idx] & F_DIRTY != 0,
            fill_at: self.fill_at[idx],
            last_touch_at: self.last_touch[idx],
            lru_deviated,
        };
        let reused = self.flags[idx] & F_DEMAND_USED != 0;
        if self.flags[idx] & F_PREFETCHED != 0 && !reused {
            self.stats.prefetch_unused += 1;
        }
        self.stats.evictions += 1;
        if ev.dirty {
            self.stats.writebacks += 1;
        }
        if let Some(t) = &self.tele {
            t.evictions.inc();
            if ev.dirty {
                t.writebacks.inc();
            }
        }
        ev
    }

    /// Writes the incoming line's tag, flags, hint score, and recency
    /// stamps into slot `idx` — the common tail of every fill path.
    // cosmos-lint: hot
    #[inline]
    fn install_at(
        &mut self,
        idx: usize,
        tag: u64,
        write: bool,
        hint: Option<LocalityHint>,
        prefetched: bool,
    ) {
        self.tags[idx] = tag;
        let mut f = if write { F_DIRTY } else { 0 };
        if prefetched {
            f |= F_PREFETCHED;
        } else {
            f |= F_DEMAND_USED;
        }
        if let Some(h) = hint {
            f |= F_HINT_PRESENT;
            if h.good {
                f |= F_HINT_GOOD;
            }
            self.scores[idx] = h.score;
        } else {
            self.scores[idx] = 0;
        }
        self.flags[idx] = f;
        self.touch(idx);
        self.fill_at[idx] = self.clock;
    }

    /// Victim selection for a full set. The inline LRU/LCR arms reproduce
    /// [`Lru::choose_victim`] / [`Lcr::choose_victim`] decision-for-decision
    /// (first-minimum tie-breaks and all) straight off the SoA arrays;
    /// boxed policies get the same `WayView` scratch slice as before.
    // cosmos-lint: hot
    fn choose_victim(&mut self, set: usize, base: usize, ways: usize) -> usize {
        match &mut self.policy {
            PolicyImpl::Lru => {
                // First minimum wins, matching Iterator::min_by_key.
                let touches = &self.last_touch[base..base + ways];
                let mut best = 0;
                for (w, &t) in touches.iter().enumerate().skip(1) {
                    if t < touches[best] {
                        best = w;
                    }
                }
                best
            }
            PolicyImpl::Lcr => {
                // Paper Algorithm 2 with LRU tie-breaks: highest-score bad
                // line first; if all good, lowest-score good line.
                // Unannotated ways count as bad with score 0.
                let mut best_bad: Option<(usize, u8, u64)> = None; // way, score, touch
                let mut best_good: Option<(usize, u8, u64)> = None;
                for w in 0..ways {
                    let idx = base + w;
                    let f = self.flags[idx];
                    let (good, score) = if f & F_HINT_PRESENT != 0 {
                        (f & F_HINT_GOOD != 0, self.scores[idx])
                    } else {
                        (false, 0)
                    };
                    let touch = self.last_touch[idx];
                    let cand = (w, score, touch);
                    if good {
                        // Lowest good score; tie -> older (smaller touch).
                        best_good = Some(match best_good {
                            None => cand,
                            Some(cur) if (score, touch) < (cur.1, cur.2) => cand,
                            Some(cur) => cur,
                        });
                    } else {
                        // Highest bad score; tie -> older.
                        best_bad = Some(match best_bad {
                            None => cand,
                            Some(cur)
                                if (core::cmp::Reverse(score), touch)
                                    < (core::cmp::Reverse(cur.1), cur.2) =>
                            {
                                cand
                            }
                            Some(cur) => cur,
                        });
                    }
                }
                best_bad
                    .or(best_good)
                    .map(|(w, _, _)| w)
                    .expect("victim search ran over a full set; every way is a candidate")
            }
            PolicyImpl::Boxed(p) => {
                self.scratch.clear();
                for w in 0..ways {
                    let idx = base + w;
                    self.scratch.push(WayView {
                        line: LineAddr::new(self.tags[idx]),
                        hint: (self.flags[idx] & F_HINT_PRESENT != 0).then(|| LocalityHint {
                            good: self.flags[idx] & F_HINT_GOOD != 0,
                            score: self.scores[idx],
                        }),
                        dirty: self.flags[idx] & F_DIRTY != 0,
                        demand_used: self.flags[idx] & F_DEMAND_USED != 0,
                    });
                }
                let victim = p.choose_victim(set, &self.scratch);
                assert!(victim < ways, "policy returned way {victim} >= {ways}");
                victim
            }
        }
    }

    // --- Skewed-associative paths (DESIGN.md §16) -----------------------
    //
    // Under `IndexKind::Skewed` a line's candidate slots lie in a
    // different set per way, so the contiguous `base..base+ways` slot row
    // the uniform paths scan does not exist. These paths walk the `ways`
    // candidate slots individually (re-hashing per way — splitmix64 is a
    // handful of arithmetic ops, cheaper than materializing a slot list)
    // and reuse the shared hit/install/evict bookkeeping, so statistics
    // and eviction provenance are identical between index kinds.

    /// Flat slot index of way `way`'s candidate slot for a line.
    #[inline]
    fn slot_of_way(&self, line_index: u64, way: usize) -> usize {
        self.config.set_of_way(line_index, way) * self.config.ways() + way
    }

    /// Looks a line up across its per-way candidate slots.
    // cosmos-lint: hot
    #[inline]
    fn find_slot_skewed(&self, line_index: u64, tag: u64) -> Option<usize> {
        for w in 0..self.config.ways() {
            let idx = self.slot_of_way(line_index, w);
            if self.tags[idx] == tag {
                return Some(idx);
            }
        }
        None
    }

    /// Demand access under skewed indexing.
    // cosmos-lint: hot
    fn access_skewed(
        &mut self,
        line: LineAddr,
        tag: u64,
        write: bool,
        hint: Option<LocalityHint>,
    ) -> AccessResult {
        if let Some(idx) = self.find_slot_skewed(line.index(), tag) {
            let first_use = self.hit_at(idx, write, hint);
            return AccessResult {
                hit: true,
                evicted: None,
                first_use_of_prefetch: first_use,
            };
        }
        self.stats.demand.miss();
        if let Some(t) = &self.tele {
            t.misses.inc();
        }
        let evicted = self.fill_skewed(line, tag, write, hint, false);
        AccessResult {
            hit: false,
            evicted,
            first_use_of_prefetch: false,
        }
    }

    /// Fill under skewed indexing: prefer an invalid candidate slot (first
    /// way wins, mirroring the uniform fill's invalid-way preference),
    /// otherwise evict the policy's pick among the candidate slots.
    // cosmos-lint: hot
    fn fill_skewed(
        &mut self,
        line: LineAddr,
        tag: u64,
        write: bool,
        hint: Option<LocalityHint>,
        prefetched: bool,
    ) -> Option<Eviction> {
        let ways = self.config.ways();
        let mut invalid = None;
        for w in 0..ways {
            let idx = self.slot_of_way(line.index(), w);
            if self.tags[idx] == INVALID_TAG {
                invalid = Some(idx);
                break;
            }
        }
        let (idx, eviction) = match invalid {
            Some(idx) => {
                self.occupied += 1;
                (idx, None)
            }
            None => {
                let victim = self.choose_victim_skewed(line.index());
                // Least-recently-touched candidate slot: the skewed
                // analogue of the strict-LRU reference way.
                let mut lru_slot = self.slot_of_way(line.index(), 0);
                for w in 1..ways {
                    let s = self.slot_of_way(line.index(), w);
                    if self.last_touch[s] < self.last_touch[lru_slot] {
                        lru_slot = s;
                    }
                }
                let ev = self.evict_bookkeeping(victim, victim != lru_slot);
                (victim, Some(ev))
            }
        };
        self.install_at(idx, tag, write, hint, prefetched);
        eviction
    }

    /// Victim selection among a line's candidate slots — the same LRU/LCR
    /// decisions as [`Cache::choose_victim`], ranged over per-way slots
    /// instead of a contiguous set. Boxed policies are rejected at
    /// construction for skewed caches, so only the inline arms exist.
    // cosmos-lint: hot
    fn choose_victim_skewed(&self, line_index: u64) -> usize {
        let ways = self.config.ways();
        match &self.policy {
            PolicyImpl::Lru => {
                let mut best = self.slot_of_way(line_index, 0);
                for w in 1..ways {
                    let idx = self.slot_of_way(line_index, w);
                    if self.last_touch[idx] < self.last_touch[best] {
                        best = idx;
                    }
                }
                best
            }
            PolicyImpl::Lcr => {
                // Paper Algorithm 2 with LRU tie-breaks, as in the uniform
                // arm: highest-score bad line first; if all good, lowest-
                // score good line. Unannotated slots count as bad, score 0.
                let mut best_bad: Option<(usize, u8, u64)> = None; // slot, score, touch
                let mut best_good: Option<(usize, u8, u64)> = None;
                for w in 0..ways {
                    let idx = self.slot_of_way(line_index, w);
                    let f = self.flags[idx];
                    let (good, score) = if f & F_HINT_PRESENT != 0 {
                        (f & F_HINT_GOOD != 0, self.scores[idx])
                    } else {
                        (false, 0)
                    };
                    let touch = self.last_touch[idx];
                    let cand = (idx, score, touch);
                    if good {
                        best_good = Some(match best_good {
                            None => cand,
                            Some(cur) if (score, touch) < (cur.1, cur.2) => cand,
                            Some(cur) => cur,
                        });
                    } else {
                        best_bad = Some(match best_bad {
                            None => cand,
                            Some(cur)
                                if (core::cmp::Reverse(score), touch)
                                    < (core::cmp::Reverse(cur.1), cur.2) =>
                            {
                                cand
                            }
                            Some(cur) => cur,
                        });
                    }
                }
                best_bad
                    .or(best_good)
                    .map(|(idx, _, _)| idx)
                    .expect("victim search ran over the candidate slots; every slot is a candidate")
            }
            PolicyImpl::Boxed(_) => {
                // cosmos-lint: allow(P2,H4): skewed construction rejects boxed policies, so this arm is dead by invariant
                unreachable!("skewed caches reject boxed policies at construction")
            }
        }
    }
}

/// The reference (boxed) implementations the inline arms must match: used
/// by the equivalence tests below and available to callers via
/// [`Cache::with_policy`].
pub fn reference_policy(kind: PolicyKind, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
    match kind {
        PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
        PolicyKind::Lcr => Box::new(Lcr::new(sets, ways)),
        other => other.build(sets, ways),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lru() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheConfig::new(512, 2), PolicyKind::Lru)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_lru();
        let r = c.access(LineAddr::new(0), false, None);
        assert!(!r.hit);
        let r = c.access(LineAddr::new(0), false, None);
        assert!(r.hit);
        assert_eq!(c.stats().demand.hits(), 1);
        assert_eq!(c.stats().demand.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_lru();
        // Set 0 holds lines 0, 4, 8, ... (4 sets).
        c.access(LineAddr::new(0), false, None);
        c.access(LineAddr::new(4), false, None);
        c.access(LineAddr::new(0), false, None); // 0 is now MRU
        let r = c.access(LineAddr::new(8), false, None); // evicts 4
        assert_eq!(r.evicted.unwrap().line, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(4)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), true, None);
        c.access(LineAddr::new(4), false, None);
        let r = c.access(LineAddr::new(8), false, None);
        let ev = r.evicted.unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), false, None);
        c.access(LineAddr::new(0), true, None);
        assert_eq!(c.invalidate(LineAddr::new(0)), Some(true));
    }

    #[test]
    fn invalidate_absent_line() {
        let mut c = small_lru();
        assert_eq!(c.invalidate(LineAddr::new(3)), None);
    }

    #[test]
    fn prefetch_fill_and_first_use() {
        let mut c = small_lru();
        assert!(c.prefetch_fill(LineAddr::new(12), None).is_none());
        assert_eq!(c.stats().prefetch_issued, 1);
        let r = c.access(LineAddr::new(12), false, None);
        assert!(r.hit);
        assert!(r.first_use_of_prefetch);
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second use is not a "first use".
        let r = c.access(LineAddr::new(12), false, None);
        assert!(!r.first_use_of_prefetch);
    }

    #[test]
    fn redundant_prefetch_counted() {
        let mut c = small_lru();
        c.access(LineAddr::new(3), false, None);
        c.prefetch_fill(LineAddr::new(3), None);
        assert_eq!(c.stats().prefetch_redundant, 1);
        assert_eq!(c.stats().prefetch_issued, 0);
    }

    #[test]
    fn unused_prefetch_counted_on_eviction() {
        let mut c = small_lru();
        c.prefetch_fill(LineAddr::new(0), None);
        c.access(LineAddr::new(4), false, None);
        c.access(LineAddr::new(8), false, None); // evicts one of them
        c.access(LineAddr::new(12), false, None); // evicts the other
        assert_eq!(c.stats().prefetch_unused, 1);
    }

    #[test]
    fn occupancy_is_bounded_by_capacity() {
        let mut c = small_lru();
        for i in 0..100 {
            c.access(LineAddr::new(i), false, None);
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn occupancy_counter_matches_scan() {
        let scan = |c: &Cache| c.tags.iter().filter(|&&t| t != INVALID_TAG).count();
        let mut c = small_lru();
        assert_eq!(c.occupancy(), 0);
        // Mixed fills, prefetches, invalidations, and evictions.
        for i in 0..6 {
            c.access(LineAddr::new(i), i % 2 == 0, None);
            assert_eq!(c.occupancy(), scan(&c));
        }
        c.prefetch_fill(LineAddr::new(20), None);
        assert_eq!(c.occupancy(), scan(&c));
        c.invalidate(LineAddr::new(2));
        c.invalidate(LineAddr::new(2)); // absent: no change
        assert_eq!(c.occupancy(), scan(&c));
        for i in 0..64 {
            c.access(LineAddr::new(100 + i), false, None);
        }
        assert_eq!(c.occupancy(), scan(&c));
        assert_eq!(c.occupancy(), 8); // full again after the sweep
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), false, None);
        let before = *c.stats();
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(99)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let tele = Telemetry::in_memory();
        let mut c = small_lru();
        c.attach_telemetry(&tele, "ctr");
        c.access(LineAddr::new(0), true, None);
        c.access(LineAddr::new(0), false, None);
        c.access(LineAddr::new(4), false, None);
        c.access(LineAddr::new(8), false, None); // evicts dirty line 0
        let reg = tele.registry().unwrap();
        assert_eq!(reg.counter("cache.ctr.hits").get(), c.stats().demand.hits());
        assert_eq!(
            reg.counter("cache.ctr.misses").get(),
            c.stats().demand.misses()
        );
        assert_eq!(
            reg.counter("cache.ctr.evictions").get(),
            c.stats().evictions
        );
        assert_eq!(
            reg.counter("cache.ctr.writebacks").get(),
            c.stats().writebacks
        );
        // A disabled handle attaches nothing.
        let mut c2 = small_lru();
        c2.attach_telemetry(&Telemetry::disabled(), "ctr");
        assert!(c2.tele.is_none());
    }

    #[test]
    fn hint_stored_and_refreshed() {
        let mut c = small_lru();
        let h1 = LocalityHint {
            good: true,
            score: 10,
        };
        c.access(LineAddr::new(0), false, Some(h1));
        // Hit without hint keeps the old one; hit with hint refreshes.
        c.access(LineAddr::new(0), false, None);
        assert_eq!(c.hint_at(0), Some(h1));
        let h2 = LocalityHint {
            good: false,
            score: 99,
        };
        c.access(LineAddr::new(0), false, Some(h2));
        assert_eq!(c.hint_at(0), Some(h2));
        assert!(c.contains(LineAddr::new(0)));
    }

    /// Drives an inline-policy cache and a boxed reference cache through an
    /// identical access stream and asserts every externally visible outcome
    /// (hit/miss, evicted line, dirtiness, stats) matches.
    fn assert_equivalent_to_boxed(kind: PolicyKind, seed: u64) {
        let cfg = CacheConfig::new(2048, 4); // 8 sets x 4 ways
        let mut fast = Cache::new(cfg, kind);
        let mut refc = Cache::with_policy(cfg, reference_policy(kind, cfg.num_sets(), cfg.ways()));
        assert!(
            !matches!(fast.policy, PolicyImpl::Boxed(_)),
            "{kind:?} must take the inline path"
        );
        let mut rng = cosmos_common::SplitMix64::new(seed);
        for i in 0..20_000u64 {
            let line = LineAddr::new(rng.next_index(96) as u64);
            let write = rng.chance(0.3);
            let hint = rng.chance(0.5).then(|| LocalityHint {
                good: rng.chance(0.5),
                score: rng.next_index(256) as u8,
            });
            let a = fast.access(line, write, hint);
            let b = refc.access(line, write, hint);
            assert_eq!(a, b, "access {i} diverged for {kind:?}");
            if rng.chance(0.05) {
                let inv = LineAddr::new(rng.next_index(96) as u64);
                assert_eq!(fast.invalidate(inv), refc.invalidate(inv), "access {i}");
            }
        }
        assert_eq!(fast.stats(), refc.stats());
        assert_eq!(fast.occupancy(), refc.occupancy());
    }

    /// A restored cache must be behaviorally indistinguishable from one that
    /// never stopped: drive two caches through an identical prefix, snapshot
    /// one into a fresh instance, then verify every subsequent access (and
    /// the stats) stay in lockstep.
    fn assert_snapshot_transparent(kind: PolicyKind, seed: u64) {
        let cfg = CacheConfig::new(2048, 4);
        let mut live = Cache::new(cfg, kind);
        let mut rng = cosmos_common::SplitMix64::new(seed);
        let drive = |c: &mut Cache, rng: &mut cosmos_common::SplitMix64| {
            let line = LineAddr::new(rng.next_index(96) as u64);
            let write = rng.chance(0.3);
            let hint = rng.chance(0.5).then(|| LocalityHint {
                good: rng.chance(0.5),
                score: rng.next_index(256) as u8,
            });
            (c.access(line, write, hint), *c.stats())
        };
        for _ in 0..5_000 {
            drive(&mut live, &mut rng);
        }
        let saved = live.save_state().unwrap();
        let mut restored = Cache::new(cfg, kind);
        restored.load_state(&saved).unwrap();
        assert_eq!(restored.occupancy(), live.occupancy());
        let mut rng2 = rng; // identical tail stream for both caches
        for i in 0..5_000 {
            let a = drive(&mut live, &mut rng);
            let b = drive(&mut restored, &mut rng2);
            assert_eq!(a, b, "post-restore access {i} diverged for {kind:?}");
        }
    }

    #[test]
    fn snapshot_restores_lru_exactly() {
        assert_snapshot_transparent(PolicyKind::Lru, 0x5EED);
    }

    #[test]
    fn snapshot_restores_lcr_exactly() {
        assert_snapshot_transparent(PolicyKind::Lcr, 0x5EEE);
    }

    #[test]
    fn snapshot_rejects_mismatch_and_corruption() {
        let cfg = CacheConfig::new(512, 2);
        let mut c = Cache::new(cfg, PolicyKind::Lru);
        c.access(LineAddr::new(1), true, None);
        let saved = c.save_state().unwrap();

        // Policy mismatch.
        let mut lcr = Cache::new(cfg, PolicyKind::Lcr);
        let err = lcr.load_state(&saved).unwrap_err();
        assert!(err.contains("LRU") && err.contains("LCR"), "{err}");

        // Geometry mismatch (different line count).
        let mut small = Cache::new(CacheConfig::new(256, 2), PolicyKind::Lru);
        let err = small.load_state(&saved).unwrap_err();
        assert!(err.contains("length"), "{err}");

        // Corrupted occupancy.
        let mut bad = saved.clone();
        if let cosmos_common::json::Value::Object(m) = &mut bad {
            m.insert("occupied", cosmos_common::json::Value::UInt(7));
        }
        let err = Cache::new(cfg, PolicyKind::Lru)
            .load_state(&bad)
            .unwrap_err();
        assert!(err.contains("occupancy"), "{err}");

        // Boxed policies refuse to snapshot.
        let boxed = Cache::with_policy(cfg, reference_policy(PolicyKind::Lru, 4, 2));
        assert!(boxed.save_state().unwrap_err().contains("boxed"));
    }

    #[test]
    fn inline_lru_matches_boxed_lru() {
        assert_equivalent_to_boxed(PolicyKind::Lru, 0xA11CE);
    }

    #[test]
    fn inline_lcr_matches_boxed_lcr() {
        assert_equivalent_to_boxed(PolicyKind::Lcr, 0xB0B);
    }

    use crate::config::IndexKind;

    /// Exercises the full access/fill/prefetch/invalidate surface under a
    /// non-modulo index and cross-checks the O(1) occupancy counter,
    /// capacity bound, and hit/miss accounting against a scan.
    fn drive_indexed(index: IndexKind, policy: PolicyKind) {
        let cfg = CacheConfig::new(2048, 4).with_index(index); // 8 sets x 4 ways
        let mut c = Cache::new(cfg, policy);
        let scan = |c: &Cache| c.tags.iter().filter(|&&t| t != INVALID_TAG).count();
        // Miss-then-hit on one line.
        assert!(!c.access(LineAddr::new(7), false, None).hit);
        assert!(c.access(LineAddr::new(7), false, None).hit);
        assert!(c.contains(LineAddr::new(7)));
        // A dirty line comes back dirty on invalidate.
        c.access(LineAddr::new(9), true, None);
        assert_eq!(c.invalidate(LineAddr::new(9)), Some(true));
        assert_eq!(c.invalidate(LineAddr::new(9)), None);
        // Prefetch + first demand use.
        assert!(c.prefetch_fill(LineAddr::new(11), None).is_none());
        assert!(
            c.access(LineAddr::new(11), false, None)
                .first_use_of_prefetch
        );
        // Sweep far past capacity: occupancy saturates at num_lines and
        // always matches the scan; every eviction's line was resident.
        let mut rng = cosmos_common::SplitMix64::new(5);
        for i in 0..4_000u64 {
            let line = LineAddr::new(rng.next_below(1 << 20));
            let r = c.access(line, rng.chance(0.3), None);
            if let Some(ev) = r.evicted {
                assert_ne!(ev.line, line, "evicted the line being filled at {i}");
            }
            assert!(c.contains(line), "just-filled line absent at {i}");
            assert_eq!(c.occupancy(), scan(&c), "occupancy drifted at {i}");
        }
        assert_eq!(c.occupancy(), cfg.num_lines());
        let s = c.stats();
        assert_eq!(s.demand.hits() + s.demand.misses(), 4_000 + 4);
    }

    #[test]
    fn random_index_cache_is_well_behaved() {
        drive_indexed(IndexKind::Random { key: 0xFEED }, PolicyKind::Lru);
        drive_indexed(IndexKind::Random { key: 0xFEED }, PolicyKind::Lcr);
    }

    #[test]
    fn skewed_index_cache_is_well_behaved() {
        drive_indexed(IndexKind::Skewed { key: 0xFEED }, PolicyKind::Lru);
        drive_indexed(IndexKind::Skewed { key: 0xFEED }, PolicyKind::Lcr);
    }

    #[test]
    fn random_index_is_a_set_permutation_of_lru_semantics() {
        // Within one set's conflict group the randomized index still runs
        // strict LRU: find lines that collide under the keyed index and
        // check eviction order.
        let cfg = CacheConfig::new(512, 2).with_index(IndexKind::Random { key: 3 });
        let mut c = Cache::new(cfg, PolicyKind::Lru);
        let target = cfg.set_of(0);
        let collide: Vec<u64> = (1..2_000u64).filter(|&l| cfg.set_of(l) == target).collect();
        assert!(collide.len() >= 2, "no colliding lines found");
        c.access(LineAddr::new(0), false, None);
        c.access(LineAddr::new(collide[0]), false, None);
        c.access(LineAddr::new(0), false, None); // line 0 is MRU
        let r = c.access(LineAddr::new(collide[1]), false, None);
        assert_eq!(r.evicted.unwrap().line, LineAddr::new(collide[0]));
        assert!(c.contains(LineAddr::new(0)));
    }

    #[test]
    fn skewed_victim_is_least_recent_candidate_slot() {
        let cfg = CacheConfig::new(2048, 4).with_index(IndexKind::Skewed { key: 9 });
        let mut c = Cache::new(cfg, PolicyKind::Lru);
        // Fill the whole cache so every candidate slot of the next line is
        // valid, then check the eviction matches the oldest candidate.
        let mut line = 0u64;
        while c.occupancy() < cfg.num_lines() {
            c.access(LineAddr::new(line), false, None);
            line += 1;
        }
        let probe = line + 10_000;
        let expect_slot = (0..cfg.ways())
            .map(|w| cfg.set_of_way(probe, w) * cfg.ways() + w)
            .min_by_key(|&idx| c.last_touch[idx])
            .unwrap();
        let expect_line = LineAddr::new(c.tags[expect_slot]);
        let r = c.access(LineAddr::new(probe), false, None);
        let ev = r.evicted.expect("full cache must evict");
        assert_eq!(ev.line, expect_line);
        assert!(!ev.lru_deviated, "LRU never deviates from itself");
    }

    #[test]
    #[should_panic(expected = "skewed-associative")]
    fn skewed_rejects_boxed_policies() {
        let cfg = CacheConfig::new(512, 2).with_index(IndexKind::Skewed { key: 1 });
        let _ = Cache::new(cfg, PolicyKind::Random { seed: 1 });
    }

    #[test]
    fn snapshot_restores_indexed_caches_exactly() {
        for index in [
            IndexKind::Random { key: 0x1234 },
            IndexKind::Skewed { key: 0x1234 },
        ] {
            let cfg = CacheConfig::new(2048, 4).with_index(index);
            let mut live = Cache::new(cfg, PolicyKind::Lru);
            let mut rng = cosmos_common::SplitMix64::new(0xC0DE);
            for _ in 0..3_000 {
                live.access(LineAddr::new(rng.next_below(4096)), rng.chance(0.3), None);
            }
            let saved = live.save_state().unwrap();
            let mut restored = Cache::new(cfg, PolicyKind::Lru);
            restored.load_state(&saved).unwrap();
            let mut rng2 = rng;
            for i in 0..3_000 {
                let line = LineAddr::new(rng.next_below(4096));
                let write = rng.chance(0.3);
                let line2 = LineAddr::new(rng2.next_below(4096));
                let write2 = rng2.chance(0.3);
                assert_eq!(
                    live.access(line, write, None),
                    restored.access(line2, write2, None),
                    "post-restore access {i} diverged under {index:?}"
                );
            }
            assert_eq!(live.stats(), restored.stats());
        }
    }
}
