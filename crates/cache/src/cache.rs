//! The generic set-associative cache.

use crate::config::CacheConfig;
use crate::policies::{PolicyKind, ReplacementPolicy, WayView};
use crate::stats::CacheStats;
use cosmos_common::LineAddr;
use cosmos_telemetry::metrics::Counter;
use cosmos_telemetry::Telemetry;

/// Telemetry handles for one cache instance, resolved once at attach time
/// (`cache.<role>.*` in the registry) so the access path pays a single
/// branch plus relaxed atomic adds. Observation only: never consulted for
/// replacement or timing.
struct TeleCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    writebacks: Counter,
}

/// An RL-provided locality annotation attached to a cached line, used by the
/// LCR replacement policy (paper §4.3: a 1-bit flag + 8-bit score per line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalityHint {
    /// `true` = predicted good locality.
    pub good: bool,
    /// Quantized Q-value magnitude backing the prediction (0–255).
    pub score: u8,
}

/// What happened to an evicted line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// The line that was evicted.
    pub line: LineAddr,
    /// Whether it was dirty (needs a writeback).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// A line evicted to make room (only possible on a miss fill).
    pub evicted: Option<Eviction>,
    /// Whether the hit line had been brought in by a prefetch and this is
    /// its first demand use.
    pub first_use_of_prefetch: bool,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    demand_used: bool,
    hint: Option<LocalityHint>,
}

impl Entry {
    const INVALID: Entry = Entry {
        tag: 0,
        valid: false,
        dirty: false,
        prefetched: false,
        demand_used: false,
        hint: None,
    };
}

/// A set-associative cache with a pluggable replacement policy.
///
/// The cache is *line-granular*: callers pass [`LineAddr`]s. It models tag
/// state only (no data payload — the functional secure-memory layer keeps
/// payloads in its own store).
///
/// # Examples
///
/// ```
/// use cosmos_cache::{Cache, CacheConfig, PolicyKind};
/// use cosmos_common::LineAddr;
/// let mut c = Cache::new(CacheConfig::new(8192, 2), PolicyKind::Lru);
/// c.access(LineAddr::new(1), true, None);
/// assert!(c.contains(LineAddr::new(1)));
/// ```
pub struct Cache {
    config: CacheConfig,
    entries: Vec<Entry>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
    /// Valid-line count, maintained on fill/invalidate so `occupancy` is
    /// O(1) instead of a scan over every line.
    occupied: usize,
    /// Reusable victim-selection buffer: `fill_internal` runs on every
    /// miss, and rebuilding a fresh `Vec<WayView>` per eviction was the
    /// hottest allocation in the simulator.
    scratch: Vec<WayView>,
    tele: Option<Box<TeleCounters>>,
}

impl core::fmt::Debug for Cache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Cache")
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cache {
    /// Creates a cache with the given geometry and replacement policy.
    pub fn new(config: CacheConfig, policy: PolicyKind) -> Self {
        let policy = policy.build(config.num_sets(), config.ways());
        Self::with_policy(config, policy)
    }

    /// Creates a cache with a custom policy object.
    pub fn with_policy(config: CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        Self {
            config,
            entries: vec![Entry::INVALID; config.num_lines()],
            policy,
            stats: CacheStats::default(),
            occupied: 0,
            scratch: Vec::with_capacity(config.ways()),
            tele: None,
        }
    }

    /// Registers this cache's hit/miss/eviction/writeback counters as
    /// `cache.<role>.*` in `telemetry`'s metrics registry. No-op (and no
    /// stored state) when telemetry is disabled.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, role: &str) {
        if let Some(reg) = telemetry.registry() {
            self.tele = Some(Box::new(TeleCounters {
                hits: reg.counter(&format!("cache.{role}.hits")),
                misses: reg.counter(&format!("cache.{role}.misses")),
                evictions: reg.counter(&format!("cache.{role}.evictions")),
                writebacks: reg.counter(&format!("cache.{role}.writebacks")),
            }));
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Non-modifying presence check (no LRU update, no stats).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// Performs a demand access: on hit, updates recency; on miss, fills the
    /// line (evicting if needed) and returns the eviction.
    ///
    /// `hint` attaches/refreshes an RL locality annotation (LCR policy); it
    /// is stored on fill and refreshed on hit when provided.
    // cosmos-lint: hot
    pub fn access(
        &mut self,
        line: LineAddr,
        write: bool,
        hint: Option<LocalityHint>,
    ) -> AccessResult {
        let set = self.config.set_of(line.index());
        let tag = self.config.tag_of(line.index());
        let base = set * self.config.ways();
        if let Some(way) = self.find_way_in_set(base, tag) {
            let idx = base + way;
            let first_use = self.entries[idx].prefetched && !self.entries[idx].demand_used;
            self.entries[idx].demand_used = true;
            if write {
                self.entries[idx].dirty = true;
            }
            if hint.is_some() {
                self.entries[idx].hint = hint;
            }
            self.stats.demand.hit();
            if let Some(t) = &self.tele {
                t.hits.inc();
            }
            if first_use {
                self.stats.prefetch_useful += 1;
            }
            self.policy.on_hit(set, way, line);
            return AccessResult {
                hit: true,
                evicted: None,
                first_use_of_prefetch: first_use,
            };
        }
        self.stats.demand.miss();
        if let Some(t) = &self.tele {
            t.misses.inc();
        }
        let evicted = self.fill_internal(set, tag, line, write, hint, false);
        AccessResult {
            hit: false,
            evicted,
            first_use_of_prefetch: false,
        }
    }

    /// Inserts a line without touching demand statistics — used for fills
    /// that are not demand misses, e.g. a dirty line evicted from an upper
    /// cache level being installed here. If the line is already resident it
    /// is marked dirty as requested and no fill happens.
    ///
    /// Returns the eviction caused, if any.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        let set = self.config.set_of(line.index());
        let tag = self.config.tag_of(line.index());
        let base = set * self.config.ways();
        if let Some(way) = self.find_way_in_set(base, tag) {
            let idx = base + way;
            if dirty {
                self.entries[idx].dirty = true;
            }
            self.policy.on_hit(set, way, line);
            return None;
        }
        self.fill_internal(set, tag, line, dirty, None, false)
    }

    /// Inserts a line brought in by a prefetch (no demand hit/miss counted).
    ///
    /// Returns the eviction caused, if any. A line already present is left
    /// untouched (the prefetch is redundant and counted as such).
    pub fn prefetch_fill(
        &mut self,
        line: LineAddr,
        hint: Option<LocalityHint>,
    ) -> Option<Eviction> {
        let set = self.config.set_of(line.index());
        let tag = self.config.tag_of(line.index());
        let base = set * self.config.ways();
        if self.find_way_in_set(base, tag).is_some() {
            self.stats.prefetch_redundant += 1;
            return None;
        }
        self.stats.prefetch_issued += 1;
        self.fill_internal(set, tag, line, false, hint, true)
    }

    /// Removes a line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.config.set_of(line.index());
        let tag = self.config.tag_of(line.index());
        let base = set * self.config.ways();
        let way = self.find_way_in_set(base, tag)?;
        let idx = base + way;
        let dirty = self.entries[idx].dirty;
        let reused = self.entries[idx].demand_used;
        self.policy.on_evict(set, way, line, reused);
        self.entries[idx] = Entry::INVALID;
        self.occupied -= 1;
        Some(dirty)
    }

    /// Number of valid lines currently cached (O(1): maintained on
    /// fill/invalidate rather than scanned).
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Iterates over all valid resident lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.entries
            .iter()
            .filter(|e| e.valid)
            .map(|e| LineAddr::new(e.tag))
    }

    fn find_way(&self, line: LineAddr) -> Option<usize> {
        let set = self.config.set_of(line.index());
        let tag = self.config.tag_of(line.index());
        self.find_way_in_set(set * self.config.ways(), tag)
    }

    /// Way lookup with the set/tag decomposition already done — the public
    /// entry points compute `set`/`tag` exactly once and share them with
    /// the fill path instead of re-deriving them per lookup.
    #[inline]
    fn find_way_in_set(&self, base: usize, tag: u64) -> Option<usize> {
        let set = &self.entries[base..base + self.config.ways()];
        set.iter().position(|e| e.valid && e.tag == tag)
    }

    // cosmos-lint: hot
    fn fill_internal(
        &mut self,
        set: usize,
        tag: u64,
        line: LineAddr,
        write: bool,
        hint: Option<LocalityHint>,
        prefetched: bool,
    ) -> Option<Eviction> {
        let ways = self.config.ways();
        let base = set * ways;
        // Prefer an invalid way.
        let (way, eviction) = match (0..ways).find(|&w| !self.entries[base + w].valid) {
            Some(w) => {
                self.occupied += 1;
                (w, None)
            }
            None => {
                self.scratch.clear();
                self.scratch
                    .extend(self.entries[base..base + ways].iter().map(|e| WayView {
                        line: LineAddr::new(e.tag),
                        hint: e.hint,
                        dirty: e.dirty,
                        demand_used: e.demand_used,
                    }));
                let victim = self.policy.choose_victim(set, &self.scratch);
                assert!(victim < ways, "policy returned way {victim} >= {ways}");
                let e = &self.entries[base + victim];
                let ev = Eviction {
                    line: LineAddr::new(e.tag),
                    dirty: e.dirty,
                };
                let reused = e.demand_used;
                if e.prefetched && !e.demand_used {
                    self.stats.prefetch_unused += 1;
                }
                self.policy.on_evict(set, victim, ev.line, reused);
                self.stats.evictions += 1;
                if ev.dirty {
                    self.stats.writebacks += 1;
                }
                if let Some(t) = &self.tele {
                    t.evictions.inc();
                    if ev.dirty {
                        t.writebacks.inc();
                    }
                }
                (victim, Some(ev))
            }
        };
        self.entries[base + way] = Entry {
            tag,
            valid: true,
            dirty: write,
            prefetched,
            demand_used: !prefetched,
            hint,
        };
        self.policy.on_fill(set, way, line, hint);
        eviction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lru() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheConfig::new(512, 2), PolicyKind::Lru)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_lru();
        let r = c.access(LineAddr::new(0), false, None);
        assert!(!r.hit);
        let r = c.access(LineAddr::new(0), false, None);
        assert!(r.hit);
        assert_eq!(c.stats().demand.hits(), 1);
        assert_eq!(c.stats().demand.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_lru();
        // Set 0 holds lines 0, 4, 8, ... (4 sets).
        c.access(LineAddr::new(0), false, None);
        c.access(LineAddr::new(4), false, None);
        c.access(LineAddr::new(0), false, None); // 0 is now MRU
        let r = c.access(LineAddr::new(8), false, None); // evicts 4
        assert_eq!(r.evicted.unwrap().line, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(4)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), true, None);
        c.access(LineAddr::new(4), false, None);
        let r = c.access(LineAddr::new(8), false, None);
        let ev = r.evicted.unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), false, None);
        c.access(LineAddr::new(0), true, None);
        assert_eq!(c.invalidate(LineAddr::new(0)), Some(true));
    }

    #[test]
    fn invalidate_absent_line() {
        let mut c = small_lru();
        assert_eq!(c.invalidate(LineAddr::new(3)), None);
    }

    #[test]
    fn prefetch_fill_and_first_use() {
        let mut c = small_lru();
        assert!(c.prefetch_fill(LineAddr::new(12), None).is_none());
        assert_eq!(c.stats().prefetch_issued, 1);
        let r = c.access(LineAddr::new(12), false, None);
        assert!(r.hit);
        assert!(r.first_use_of_prefetch);
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second use is not a "first use".
        let r = c.access(LineAddr::new(12), false, None);
        assert!(!r.first_use_of_prefetch);
    }

    #[test]
    fn redundant_prefetch_counted() {
        let mut c = small_lru();
        c.access(LineAddr::new(3), false, None);
        c.prefetch_fill(LineAddr::new(3), None);
        assert_eq!(c.stats().prefetch_redundant, 1);
        assert_eq!(c.stats().prefetch_issued, 0);
    }

    #[test]
    fn unused_prefetch_counted_on_eviction() {
        let mut c = small_lru();
        c.prefetch_fill(LineAddr::new(0), None);
        c.access(LineAddr::new(4), false, None);
        c.access(LineAddr::new(8), false, None); // evicts one of them
        c.access(LineAddr::new(12), false, None); // evicts the other
        assert_eq!(c.stats().prefetch_unused, 1);
    }

    #[test]
    fn occupancy_is_bounded_by_capacity() {
        let mut c = small_lru();
        for i in 0..100 {
            c.access(LineAddr::new(i), false, None);
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn occupancy_counter_matches_scan() {
        let scan = |c: &Cache| c.entries.iter().filter(|e| e.valid).count();
        let mut c = small_lru();
        assert_eq!(c.occupancy(), 0);
        // Mixed fills, prefetches, invalidations, and evictions.
        for i in 0..6 {
            c.access(LineAddr::new(i), i % 2 == 0, None);
            assert_eq!(c.occupancy(), scan(&c));
        }
        c.prefetch_fill(LineAddr::new(20), None);
        assert_eq!(c.occupancy(), scan(&c));
        c.invalidate(LineAddr::new(2));
        c.invalidate(LineAddr::new(2)); // absent: no change
        assert_eq!(c.occupancy(), scan(&c));
        for i in 0..64 {
            c.access(LineAddr::new(100 + i), false, None);
        }
        assert_eq!(c.occupancy(), scan(&c));
        assert_eq!(c.occupancy(), 8); // full again after the sweep
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), false, None);
        let before = *c.stats();
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(99)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let tele = Telemetry::in_memory();
        let mut c = small_lru();
        c.attach_telemetry(&tele, "ctr");
        c.access(LineAddr::new(0), true, None);
        c.access(LineAddr::new(0), false, None);
        c.access(LineAddr::new(4), false, None);
        c.access(LineAddr::new(8), false, None); // evicts dirty line 0
        let reg = tele.registry().unwrap();
        assert_eq!(reg.counter("cache.ctr.hits").get(), c.stats().demand.hits());
        assert_eq!(
            reg.counter("cache.ctr.misses").get(),
            c.stats().demand.misses()
        );
        assert_eq!(
            reg.counter("cache.ctr.evictions").get(),
            c.stats().evictions
        );
        assert_eq!(
            reg.counter("cache.ctr.writebacks").get(),
            c.stats().writebacks
        );
        // A disabled handle attaches nothing.
        let mut c2 = small_lru();
        c2.attach_telemetry(&Telemetry::disabled(), "ctr");
        assert!(c2.tele.is_none());
    }

    #[test]
    fn hint_stored_and_refreshed() {
        let mut c = small_lru();
        let h1 = LocalityHint {
            good: true,
            score: 10,
        };
        c.access(LineAddr::new(0), false, Some(h1));
        // Hit without hint keeps the old one; hit with hint refreshes.
        c.access(LineAddr::new(0), false, None);
        let h2 = LocalityHint {
            good: false,
            score: 99,
        };
        c.access(LineAddr::new(0), false, Some(h2));
        // Verify via LCR-style view: evict and check policy saw the hint.
        // (Direct check: resident_lines still contains it.)
        assert!(c.contains(LineAddr::new(0)));
    }
}
