//! Per-cache statistics.

use cosmos_common::stats::HitMiss;

/// Counters accumulated by a [`crate::Cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (hits/misses).
    pub demand: HitMiss,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty evictions (writebacks generated).
    pub writebacks: u64,
    /// Prefetch fills actually inserted.
    pub prefetch_issued: u64,
    /// Prefetched lines that later took a demand hit.
    pub prefetch_useful: u64,
    /// Prefetched lines evicted without any demand use.
    pub prefetch_unused: u64,
    /// Prefetches dropped because the line was already resident.
    pub prefetch_redundant: u64,
}

impl CacheStats {
    /// Prefetch accuracy: useful / issued, or 0 when none issued.
    pub fn prefetch_accuracy(&self) -> f64 {
        cosmos_common::stats::ratio(self.prefetch_useful, self.prefetch_issued)
    }

    /// Demand miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    /// Counts accumulated since `baseline`, for warmup-excluding
    /// measurement windows. Each subtraction is checked in every build
    /// profile (`cosmos_common::stats::window_sub`): a field that went
    /// backwards means a counter reset, and the window would be garbage.
    pub fn since(&self, baseline: &CacheStats) -> CacheStats {
        use cosmos_common::stats::window_sub;
        CacheStats {
            demand: self.demand.since(&baseline.demand),
            evictions: window_sub(self.evictions, baseline.evictions),
            writebacks: window_sub(self.writebacks, baseline.writebacks),
            prefetch_issued: window_sub(self.prefetch_issued, baseline.prefetch_issued),
            prefetch_useful: window_sub(self.prefetch_useful, baseline.prefetch_useful),
            prefetch_unused: window_sub(self.prefetch_unused, baseline.prefetch_unused),
            prefetch_redundant: window_sub(self.prefetch_redundant, baseline.prefetch_redundant),
        }
    }

    /// Encodes the counters for snapshots.
    pub fn to_json(&self) -> cosmos_common::json::Value {
        cosmos_common::json!({
            "demand": (self.demand.to_json()),
            "evictions": (self.evictions),
            "writebacks": (self.writebacks),
            "prefetch_issued": (self.prefetch_issued),
            "prefetch_useful": (self.prefetch_useful),
            "prefetch_unused": (self.prefetch_unused),
            "prefetch_redundant": (self.prefetch_redundant),
        })
    }

    /// Decodes counters produced by [`CacheStats::to_json`].
    pub fn from_json(v: &cosmos_common::json::Value) -> Result<Self, String> {
        use cosmos_common::json::codec;
        Ok(Self {
            demand: HitMiss::from_json(codec::field(v, "demand")?)?,
            evictions: codec::u64_field(v, "evictions")?,
            writebacks: codec::u64_field(v, "writebacks")?,
            prefetch_issued: codec::u64_field(v, "prefetch_issued")?,
            prefetch_useful: codec::u64_field(v, "prefetch_useful")?,
            prefetch_unused: codec::u64_field(v, "prefetch_unused")?,
            prefetch_redundant: codec::u64_field(v, "prefetch_redundant")?,
        })
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.demand.merge(&other.demand);
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_useful += other.prefetch_useful;
        self.prefetch_unused += other.prefetch_unused;
        self.prefetch_redundant += other.prefetch_redundant;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_handles_zero_issued() {
        let s = CacheStats::default();
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn since_subtracts_baseline() {
        let mut warm = CacheStats::default();
        warm.demand.hit();
        warm.evictions = 2;
        let mut total = warm;
        total.demand.hit();
        total.demand.miss();
        total.evictions = 5;
        total.writebacks = 1;
        let window = total.since(&warm);
        assert_eq!(window.demand.total(), 2);
        assert_eq!(window.demand.misses(), 1);
        assert_eq!(window.evictions, 3);
        assert_eq!(window.writebacks, 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CacheStats::default();
        a.demand.hit();
        a.evictions = 2;
        let mut b = CacheStats::default();
        b.demand.miss();
        b.writebacks = 1;
        a.merge(&b);
        assert_eq!(a.demand.total(), 2);
        assert_eq!(a.evictions, 2);
        assert_eq!(a.writebacks, 1);
    }
}
