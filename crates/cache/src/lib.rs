//! Set-associative cache substrate with pluggable replacement policies and
//! prefetchers.
//!
//! Every cache level in the COSMOS simulator — L1/L2/LLC data caches, the
//! CTR cache (LRU or LCR), and the Merkle-tree metadata cache — is an
//! instance of [`Cache`]. Replacement behaviour is provided by a
//! [`ReplacementPolicy`] implementation:
//!
//! - [`policies::Lru`] — true LRU (the paper's baseline CTR cache),
//! - [`policies::RandomRepl`] — random victim,
//! - [`policies::Rrip`] — static RRIP (Jaleel et al.),
//! - [`policies::Ship`] — signature-based hit prediction (Wu et al.),
//! - [`policies::Mockingjay`] — sampled reuse-distance / ETA policy
//!   (Shah et al.), simplified but faithful to its eviction criterion,
//! - [`policies::Lcr`] — the paper's Locality-Centric Replacement
//!   (Algorithm 2), driven by RL locality predictions.
//!
//! Prefetchers ([`Prefetcher`]) generate candidate lines from the demand
//! stream: [`prefetchers::NextLine`], [`prefetchers::Stride`], and
//! [`prefetchers::Berti`] (a local-delta prefetcher in the spirit of
//! Navarro-Torres et al., used by the paper's Figure 5 study).
//!
//! # Examples
//!
//! ```
//! use cosmos_cache::{Cache, CacheConfig, PolicyKind};
//! use cosmos_common::LineAddr;
//!
//! let mut c = Cache::new(CacheConfig::new(4096, 4), PolicyKind::Lru);
//! assert!(!c.access(LineAddr::new(7), false, None).hit);
//! assert!(c.access(LineAddr::new(7), false, None).hit);
//! ```

pub mod cache;
pub mod config;
pub mod policies;
pub mod prefetchers;
pub mod stats;

pub use cache::{AccessResult, Cache, Eviction, LocalityHint};
pub use config::{CacheConfig, IndexKind};
pub use policies::{PolicyKind, ReplacementPolicy};
pub use prefetchers::{Prefetcher, PrefetcherKind};
pub use stats::CacheStats;
