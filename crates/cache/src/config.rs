//! Cache geometry configuration.

use cosmos_common::hash::splitmix64;
use cosmos_common::LINE_SIZE;

/// How a line index maps to a set.
///
/// The occupancy-channel defenses (DESIGN.md §16) replace the
/// low-order-bits modulo index with keyed hashes so an attacker cannot
/// construct an eviction set for a victim line without the key:
///
/// - [`IndexKind::Modulo`] — the classical `line & (sets-1)` index. All
///   ways of a set share one slot row; this is the historical behavior and
///   the default, so existing artifacts are unchanged.
/// - [`IndexKind::Random`] — one keyed permutation over the whole index
///   space: `splitmix64(line ^ key) & (sets-1)`. Still set-associative
///   (all ways agree on the set), but the attacker's address→set mapping
///   is unpredictable without the key.
/// - [`IndexKind::Skewed`] — skewed associativity: way `w` uses its own
///   keyed hash `splitmix64(line ^ key ^ way-salt) & (sets-1)`, so a line's
///   candidate slots lie in a *different* set per way and conflict groups
///   no longer align across ways.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Low-order-bits modulo indexing (the default).
    Modulo,
    /// Keyed-randomized indexing: one seeded permutation for all ways.
    Random {
        /// The index key (derived from the seed by the design plumbing).
        key: u64,
    },
    /// Skewed-associative indexing: one independent keyed hash per way.
    Skewed {
        /// The index key (derived from the seed by the design plumbing).
        key: u64,
    },
}

impl IndexKind {
    /// Whether all ways of a line agree on one set (`Modulo`/`Random`).
    /// Skewed caches give every way its own candidate set, so the
    /// contiguous-set storage model does not apply to them.
    #[inline]
    pub const fn is_uniform(&self) -> bool {
        !matches!(self, IndexKind::Skewed { .. })
    }

    /// A short stable name for reports and config fingerprints.
    pub const fn name(&self) -> &'static str {
        match self {
            IndexKind::Modulo => "modulo",
            IndexKind::Random { .. } => "random",
            IndexKind::Skewed { .. } => "skewed",
        }
    }
}

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use cosmos_cache::CacheConfig;
/// let c = CacheConfig::new(512 * 1024, 8); // the paper's 512 KB CTR cache
/// assert_eq!(c.num_sets(), 1024);
/// assert_eq!(c.num_lines(), 8192);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: usize,
    ways: usize,
    line_size: usize,
    // Derived geometry, precomputed once at construction so the per-access
    // set lookup is a single mask instead of two divisions.
    num_sets: usize,
    num_lines: usize,
    set_mask: usize,
    index: IndexKind,
}

impl CacheConfig {
    /// Creates a configuration with 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent: zero ways, size not a
    /// multiple of `ways * line_size`, or a non-power-of-two set count.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        Self::with_line_size(size_bytes, ways, LINE_SIZE)
    }

    /// Creates a configuration with an explicit line size.
    ///
    /// # Panics
    ///
    /// See [`CacheConfig::new`].
    pub fn with_line_size(size_bytes: usize, ways: usize, line_size: usize) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        assert!(line_size > 0, "line size must be positive");
        assert!(
            size_bytes.is_multiple_of(ways * line_size),
            "cache size {size_bytes} is not a whole number of sets (ways={ways}, line={line_size})"
        );
        let sets = size_bytes / (ways * line_size);
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two, got {sets}"
        );
        Self {
            size_bytes,
            ways,
            line_size,
            num_sets: sets,
            num_lines: size_bytes / line_size,
            set_mask: sets - 1,
            index: IndexKind::Modulo,
        }
    }

    /// Returns a copy using `index` for the line→set mapping.
    #[must_use]
    pub const fn with_index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }

    /// The line→set mapping in use.
    pub const fn index(&self) -> IndexKind {
        self.index
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub const fn line_size(&self) -> usize {
        self.line_size
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Total number of lines.
    pub const fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Set index for a line index.
    ///
    /// For [`IndexKind::Skewed`] configurations this returns way 0's
    /// candidate set (each way has its own — use
    /// [`CacheConfig::set_of_way`] on the lookup path); callers that only
    /// need a stable in-range set attribution (telemetry heatmaps) can
    /// still use this.
    #[inline]
    pub fn set_of(&self, line_index: u64) -> usize {
        match self.index {
            IndexKind::Modulo => (line_index as usize) & self.set_mask,
            IndexKind::Random { key } => (splitmix64(line_index ^ key) as usize) & self.set_mask,
            IndexKind::Skewed { key } => self.skewed_set(line_index, key, 0),
        }
    }

    /// Set index of way `way`'s candidate slot for a line index. Equal to
    /// [`CacheConfig::set_of`] for uniform index kinds; skewed caches hash
    /// each way independently.
    #[inline]
    pub fn set_of_way(&self, line_index: u64, way: usize) -> usize {
        match self.index {
            IndexKind::Skewed { key } => self.skewed_set(line_index, key, way),
            _ => self.set_of(line_index),
        }
    }

    #[inline]
    fn skewed_set(&self, line_index: u64, key: u64, way: usize) -> usize {
        // Salt the key per way so the per-way hash functions are
        // independent; way 0 keeps the unsalted key so a 1-way skewed
        // cache degenerates to the randomized index.
        let salt = (way as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (splitmix64(line_index ^ key ^ salt) as usize) & self.set_mask
    }

    /// Tag (the line index itself; sets store full line indices for
    /// simplicity — a simulator does not need bit-sliced tags).
    #[inline]
    pub fn tag_of(&self, line_index: u64) -> u64 {
        line_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        // L1: 32KB 2-way; L2: 1MB 8-way; LLC: 8MB 16-way; CTR: 512KB 8-way.
        assert_eq!(CacheConfig::new(32 * 1024, 2).num_sets(), 256);
        assert_eq!(CacheConfig::new(1024 * 1024, 8).num_sets(), 2048);
        assert_eq!(CacheConfig::new(8 * 1024 * 1024, 16).num_sets(), 8192);
        assert_eq!(CacheConfig::new(512 * 1024, 8).num_sets(), 1024);
    }

    #[test]
    fn set_mapping_stays_in_range() {
        let c = CacheConfig::new(128 * 1024, 8);
        for line in [0u64, 1, 255, 256, 1 << 40] {
            assert!(c.set_of(line) < c.num_sets());
        }
    }

    #[test]
    fn consecutive_lines_map_to_consecutive_sets() {
        let c = CacheConfig::new(4096, 1);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(1), 1);
        assert_eq!(c.set_of(c.num_sets() as u64), 0);
    }

    #[test]
    fn random_index_is_in_range_keyed_and_deterministic() {
        let base = CacheConfig::new(128 * 1024, 8);
        let a = base.with_index(IndexKind::Random { key: 1 });
        let b = base.with_index(IndexKind::Random { key: 2 });
        let mut differs = false;
        for line in 0u64..512 {
            let sa = a.set_of(line);
            assert!(sa < a.num_sets());
            assert_eq!(sa, a.set_of(line), "deterministic");
            assert_eq!(sa, a.set_of_way(line, 3), "uniform across ways");
            differs |= sa != b.set_of(line);
            differs |= sa != base.set_of(line);
        }
        assert!(differs, "keyed index never diverged from modulo/other key");
    }

    #[test]
    fn skewed_index_hashes_ways_independently() {
        let c = CacheConfig::new(128 * 1024, 8).with_index(IndexKind::Skewed { key: 7 });
        assert!(!c.index().is_uniform());
        let mut way_differs = false;
        for line in 0u64..512 {
            for way in 0..c.ways() {
                let s = c.set_of_way(line, way);
                assert!(s < c.num_sets());
                way_differs |= s != c.set_of_way(line, 0);
            }
            // set_of is way 0's candidate set.
            assert_eq!(c.set_of(line), c.set_of_way(line, 0));
        }
        assert!(way_differs, "skewed ways always agreed on a set");
    }

    #[test]
    fn index_names_are_stable() {
        assert_eq!(IndexKind::Modulo.name(), "modulo");
        assert_eq!(IndexKind::Random { key: 0 }.name(), "random");
        assert_eq!(IndexKind::Skewed { key: 0 }.name(), "skewed");
        assert!(IndexKind::Modulo.is_uniform());
        assert!(IndexKind::Random { key: 0 }.is_uniform());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        CacheConfig::new(3 * 64 * 8, 8);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        CacheConfig::new(4096, 0);
    }
}
