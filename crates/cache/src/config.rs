//! Cache geometry configuration.

use cosmos_common::LINE_SIZE;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use cosmos_cache::CacheConfig;
/// let c = CacheConfig::new(512 * 1024, 8); // the paper's 512 KB CTR cache
/// assert_eq!(c.num_sets(), 1024);
/// assert_eq!(c.num_lines(), 8192);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: usize,
    ways: usize,
    line_size: usize,
    // Derived geometry, precomputed once at construction so the per-access
    // set lookup is a single mask instead of two divisions.
    num_sets: usize,
    num_lines: usize,
    set_mask: usize,
}

impl CacheConfig {
    /// Creates a configuration with 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent: zero ways, size not a
    /// multiple of `ways * line_size`, or a non-power-of-two set count.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        Self::with_line_size(size_bytes, ways, LINE_SIZE)
    }

    /// Creates a configuration with an explicit line size.
    ///
    /// # Panics
    ///
    /// See [`CacheConfig::new`].
    pub fn with_line_size(size_bytes: usize, ways: usize, line_size: usize) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        assert!(line_size > 0, "line size must be positive");
        assert!(
            size_bytes.is_multiple_of(ways * line_size),
            "cache size {size_bytes} is not a whole number of sets (ways={ways}, line={line_size})"
        );
        let sets = size_bytes / (ways * line_size);
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two, got {sets}"
        );
        Self {
            size_bytes,
            ways,
            line_size,
            num_sets: sets,
            num_lines: size_bytes / line_size,
            set_mask: sets - 1,
        }
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub const fn line_size(&self) -> usize {
        self.line_size
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Total number of lines.
    pub const fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Set index for a line index.
    #[inline]
    pub fn set_of(&self, line_index: u64) -> usize {
        (line_index as usize) & self.set_mask
    }

    /// Tag (the line index itself; sets store full line indices for
    /// simplicity — a simulator does not need bit-sliced tags).
    #[inline]
    pub fn tag_of(&self, line_index: u64) -> u64 {
        line_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        // L1: 32KB 2-way; L2: 1MB 8-way; LLC: 8MB 16-way; CTR: 512KB 8-way.
        assert_eq!(CacheConfig::new(32 * 1024, 2).num_sets(), 256);
        assert_eq!(CacheConfig::new(1024 * 1024, 8).num_sets(), 2048);
        assert_eq!(CacheConfig::new(8 * 1024 * 1024, 16).num_sets(), 8192);
        assert_eq!(CacheConfig::new(512 * 1024, 8).num_sets(), 1024);
    }

    #[test]
    fn set_mapping_stays_in_range() {
        let c = CacheConfig::new(128 * 1024, 8);
        for line in [0u64, 1, 255, 256, 1 << 40] {
            assert!(c.set_of(line) < c.num_sets());
        }
    }

    #[test]
    fn consecutive_lines_map_to_consecutive_sets() {
        let c = CacheConfig::new(4096, 1);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(1), 1);
        assert_eq!(c.set_of(c.num_sets() as u64), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        CacheConfig::new(3 * 64 * 8, 8);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        CacheConfig::new(4096, 0);
    }
}
