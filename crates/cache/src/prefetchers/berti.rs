//! Berti-like local-delta prefetcher (after Navarro-Torres et al.,
//! MICRO 2022).
//!
//! Berti's key idea: learn, per access stream, the set of *local deltas*
//! that would have produced timely and accurate prefetches, score them by
//! coverage, and prefetch only with the best-scoring deltas. This
//! implementation keeps a short history of recent line addresses per 4 KiB
//! region; each access "confirms" the deltas that reach it from history
//! (those would have been accurate), and issues prefetches using deltas
//! whose confirmation ratio exceeds a threshold.

use super::Prefetcher;
use cosmos_common::hash::hash_key;
use cosmos_common::LineAddr;

const REGION_TABLE: usize = 512;
const HISTORY_PER_REGION: usize = 8;
const DELTA_TABLE: usize = 64;
const SCORE_MAX: u16 = 1024;
/// Issue threshold: confirmed/issued ratio over this value.
const ACCURACY_THRESHOLD: f32 = 0.35;
/// Minimum observations before a delta may issue.
const MIN_TRIES: u16 = 8;

#[derive(Clone, Copy, Debug, Default)]
struct RegionEntry {
    region: u64,
    history: [u64; HISTORY_PER_REGION],
    len: u8,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct DeltaScore {
    delta: i32,
    confirmed: u16,
    tries: u16,
    valid: bool,
}

/// Local-delta prefetcher with accuracy-scored deltas.
#[derive(Debug)]
pub struct Berti {
    regions: Vec<RegionEntry>,
    deltas: Vec<DeltaScore>,
}

impl Default for Berti {
    fn default() -> Self {
        Self::new()
    }
}

impl Berti {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self {
            regions: vec![RegionEntry::default(); REGION_TABLE],
            deltas: vec![DeltaScore::default(); DELTA_TABLE],
        }
    }

    fn delta_slot(&mut self, delta: i32) -> &mut DeltaScore {
        let slot = hash_key(delta as u32 as u64, DELTA_TABLE);
        let e = &mut self.deltas[slot];
        if !e.valid || e.delta != delta {
            *e = DeltaScore {
                delta,
                confirmed: 0,
                tries: 0,
                valid: true,
            };
        }
        e
    }

    fn best_delta(&self) -> Option<i32> {
        self.deltas
            .iter()
            .filter(|e| e.valid && e.tries >= MIN_TRIES)
            .filter(|e| e.confirmed as f32 / e.tries as f32 >= ACCURACY_THRESHOLD)
            .max_by_key(|e| (e.confirmed as u32 * 1024) / e.tries.max(1) as u32)
            .map(|e| e.delta)
    }
}

impl Prefetcher for Berti {
    fn on_access(&mut self, line: LineAddr, _hit: bool, out: &mut Vec<LineAddr>) {
        let region = line.index() >> 6;
        let slot = hash_key(region, REGION_TABLE);
        // Take a snapshot of history to score deltas against.
        let entry = self.regions[slot];
        let same_region = entry.valid && entry.region == region;
        if same_region {
            for i in 0..entry.len as usize {
                let prev = entry.history[i];
                let delta = line.index() as i64 - prev as i64;
                if delta != 0 && delta.abs() <= 63 {
                    let e = self.delta_slot(delta as i32);
                    e.tries = (e.tries + 1).min(SCORE_MAX);
                    e.confirmed = (e.confirmed + 1).min(SCORE_MAX);
                }
            }
            // Penalize the deltas that were *not* confirmed from the newest
            // history point (they aged one step without reaching anything).
            if entry.len > 0 {
                let newest = entry.history[0];
                let observed = line.index() as i64 - newest as i64;
                for slot_idx in 0..DELTA_TABLE {
                    let e = &mut self.deltas[slot_idx];
                    if e.valid && e.delta as i64 != observed && e.tries < SCORE_MAX {
                        e.tries += 1;
                    }
                }
            }
        }
        // Update history (most recent first).
        let e = &mut self.regions[slot];
        if !same_region {
            *e = RegionEntry {
                region,
                history: [0; HISTORY_PER_REGION],
                len: 0,
                valid: true,
            };
        }
        let len = (e.len as usize).min(HISTORY_PER_REGION - 1);
        for i in (1..=len).rev() {
            e.history[i] = e.history[i - 1];
        }
        e.history[0] = line.index();
        e.len = (e.len + 1).min(HISTORY_PER_REGION as u8);

        if let Some(d) = self.best_delta() {
            out.push(line.offset(d as i64));
        }
    }

    fn name(&self) -> &'static str {
        "Berti"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(p: &mut Berti, line: LineAddr) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(line, false, &mut out);
        out
    }

    #[test]
    fn learns_sequential_delta() {
        let mut p = Berti::new();
        let mut out = Vec::new();
        for i in 0..32u64 {
            out = candidates(&mut p, LineAddr::new(i));
        }
        assert_eq!(out, vec![LineAddr::new(32)]);
    }

    #[test]
    fn learns_strided_delta() {
        let mut p = Berti::new();
        let mut out = Vec::new();
        for i in 0..30u64 {
            out = candidates(&mut p, LineAddr::new(3 * i));
        }
        assert_eq!(out, vec![LineAddr::new(90)]);
    }

    #[test]
    fn random_stream_has_low_issue_rate() {
        let mut p = Berti::new();
        let mut rng = cosmos_common::SplitMix64::new(17);
        let mut issued = 0usize;
        for _ in 0..2000 {
            let line = LineAddr::new(rng.next_below(1 << 20));
            issued += candidates(&mut p, line).len();
        }
        assert!(issued < 400, "issued {issued} on random stream");
    }

    #[test]
    fn history_is_per_region() {
        let mut p = Berti::new();
        // Interleave two regions with different strides; both should learn.
        for i in 0..40u64 {
            candidates(&mut p, LineAddr::new(i));
            candidates(&mut p, LineAddr::new(100_000 + 2 * i));
        }
        assert!(!candidates(&mut p, LineAddr::new(40)).is_empty());
    }
}
