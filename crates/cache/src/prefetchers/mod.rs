//! Prefetchers over the demand line stream.

mod berti;
mod nextline;
mod stride;

pub use berti::Berti;
pub use nextline::NextLine;
pub use stride::Stride;

use cosmos_common::LineAddr;

/// A prefetcher observes each demand access and proposes lines to bring in.
pub trait Prefetcher: Send {
    /// Observes a demand access (with hit/miss outcome) and pushes lines to
    /// prefetch into `out`. The caller clears and reuses the buffer across
    /// accesses so the per-access path never allocates; implementations
    /// only append and may leave `out` untouched.
    fn on_access(&mut self, line: LineAddr, hit: bool, out: &mut Vec<LineAddr>);

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Prefetcher selector for runtime configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Always prefetch `line + 1`.
    NextLine,
    /// Confidence-gated stride detection per 4 KiB region.
    Stride,
    /// Local-delta (Berti-like) prefetching with per-delta accuracy scoring.
    Berti,
}

impl PrefetcherKind {
    /// Instantiates the prefetcher, or `None` for [`PrefetcherKind::None`].
    pub fn build(self) -> Option<Box<dyn Prefetcher>> {
        match self {
            PrefetcherKind::None => None,
            PrefetcherKind::NextLine => Some(Box::new(NextLine::new())),
            PrefetcherKind::Stride => Some(Box::new(Stride::new())),
            PrefetcherKind::Berti => Some(Box::new(Berti::new())),
        }
    }
}

impl core::fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PrefetcherKind::None => "None",
            PrefetcherKind::NextLine => "Next-Line",
            PrefetcherKind::Stride => "Stride",
            PrefetcherKind::Berti => "Berti",
        };
        f.write_str(s)
    }
}
