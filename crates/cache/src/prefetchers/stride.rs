//! Stride prefetcher with per-region detection and 2-bit confidence.
//!
//! Classic stride prefetchers index their tables by PC; a memory-side
//! prefetcher (as on the paper's CTR cache) has no PC, so this one tracks
//! strides per 4 KiB region: if three consecutive accesses within a region
//! exhibit the same line stride, it prefetches ahead.

use super::Prefetcher;
use cosmos_common::hash::hash_key;
use cosmos_common::LineAddr;

const TABLE_ENTRIES: usize = 1024;
const CONFIDENCE_MAX: u8 = 3;
const CONFIDENCE_THRESHOLD: u8 = 2;

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    region: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Region-indexed stride prefetcher.
#[derive(Debug)]
pub struct Stride {
    table: Vec<StrideEntry>,
    degree: usize,
}

impl Default for Stride {
    fn default() -> Self {
        Self::new()
    }
}

impl Stride {
    /// Creates the prefetcher with degree 1.
    pub fn new() -> Self {
        Self::with_degree(1)
    }

    /// Creates the prefetcher issuing `degree` prefetches per trigger.
    pub fn with_degree(degree: usize) -> Self {
        Self {
            table: vec![StrideEntry::default(); TABLE_ENTRIES],
            degree,
        }
    }
}

impl Prefetcher for Stride {
    fn on_access(&mut self, line: LineAddr, _hit: bool, out: &mut Vec<LineAddr>) {
        let region = line.index() >> 6; // 64 lines = 4 KiB region
        let slot = hash_key(region, TABLE_ENTRIES);
        let e = &mut self.table[slot];
        if !e.valid || e.region != region {
            *e = StrideEntry {
                region,
                last_line: line.index(),
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return;
        }
        let observed = line.index() as i64 - e.last_line as i64;
        e.last_line = line.index();
        if observed == 0 {
            return;
        }
        if observed == e.stride {
            e.confidence = (e.confidence + 1).min(CONFIDENCE_MAX);
        } else {
            e.stride = observed;
            e.confidence = 0;
            return;
        }
        if e.confidence >= CONFIDENCE_THRESHOLD {
            let stride = e.stride;
            for k in 1..=self.degree as i64 {
                out.push(line.offset(stride * k));
            }
        }
    }

    fn name(&self) -> &'static str {
        "Stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(p: &mut Stride, line: LineAddr) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(line, false, &mut out);
        out
    }

    #[test]
    fn detects_unit_stride() {
        let mut p = Stride::new();
        let mut out = Vec::new();
        for i in 0..6u64 {
            out = candidates(&mut p, LineAddr::new(100 + i));
        }
        assert_eq!(out, vec![LineAddr::new(106)]);
    }

    #[test]
    fn detects_negative_stride() {
        let mut p = Stride::new();
        let mut out = Vec::new();
        // Stay within one 64-line region (the table is region-indexed).
        for i in 0..6u64 {
            out = candidates(&mut p, LineAddr::new(254 - 2 * i));
        }
        assert_eq!(out, vec![LineAddr::new(242)]);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = Stride::new();
        let mut issued = 0;
        let mut rng = cosmos_common::SplitMix64::new(3);
        for _ in 0..200 {
            let line = LineAddr::new(rng.next_below(50));
            issued += candidates(&mut p, line).len();
        }
        // A few coincidental repeats are tolerable, but not systematic.
        assert!(issued < 40, "issued {issued} prefetches on random input");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = Stride::new();
        for i in 0..4u64 {
            candidates(&mut p, LineAddr::new(i));
        }
        // Break the stride.
        assert!(candidates(&mut p, LineAddr::new(40)).is_empty());
        assert!(candidates(&mut p, LineAddr::new(41)).is_empty());
    }

    #[test]
    fn degree_scales_prefetch_count() {
        let mut p = Stride::with_degree(3);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out = candidates(&mut p, LineAddr::new(i));
        }
        assert_eq!(
            out,
            vec![LineAddr::new(6), LineAddr::new(7), LineAddr::new(8)]
        );
    }

    #[test]
    fn sink_buffer_is_append_only() {
        // The caller owns clearing; a stale candidate in the buffer must
        // survive an on_access that issues nothing.
        let mut p = Stride::new();
        let mut out = vec![LineAddr::new(7)];
        p.on_access(LineAddr::new(500), false, &mut out);
        assert_eq!(out, vec![LineAddr::new(7)]);
    }
}
