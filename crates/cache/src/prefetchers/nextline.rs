//! Next-line prefetcher.

use super::Prefetcher;
use cosmos_common::LineAddr;

/// Prefetches `line + 1` on every demand access.
#[derive(Debug, Default)]
pub struct NextLine;

impl NextLine {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self
    }
}

impl Prefetcher for NextLine {
    fn on_access(&mut self, line: LineAddr, _hit: bool) -> Vec<LineAddr> {
        vec![line.offset(1)]
    }

    fn name(&self) -> &'static str {
        "Next-Line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_prefetches_successor() {
        let mut p = NextLine::new();
        assert_eq!(
            p.on_access(LineAddr::new(10), true),
            vec![LineAddr::new(11)]
        );
        assert_eq!(
            p.on_access(LineAddr::new(10), false),
            vec![LineAddr::new(11)]
        );
    }
}
