//! Next-line prefetcher.

use super::Prefetcher;
use cosmos_common::LineAddr;

/// Prefetches `line + 1` on every demand access.
#[derive(Debug, Default)]
pub struct NextLine;

impl NextLine {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self
    }
}

impl Prefetcher for NextLine {
    fn on_access(&mut self, line: LineAddr, _hit: bool, out: &mut Vec<LineAddr>) {
        out.push(line.offset(1));
    }

    fn name(&self) -> &'static str {
        "Next-Line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(p: &mut NextLine, line: LineAddr, hit: bool) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(line, hit, &mut out);
        out
    }

    #[test]
    fn always_prefetches_successor() {
        let mut p = NextLine::new();
        assert_eq!(
            candidates(&mut p, LineAddr::new(10), true),
            vec![LineAddr::new(11)]
        );
        assert_eq!(
            candidates(&mut p, LineAddr::new(10), false),
            vec![LineAddr::new(11)]
        );
    }
}
