//! Replacement policies.

mod drrip;
mod lcr;
mod lru;
mod mockingjay;
mod random;
mod rrip;
mod ship;

pub use drrip::Drrip;
pub use lcr::Lcr;
pub use lru::Lru;
pub use mockingjay::Mockingjay;
pub use random::RandomRepl;
pub use rrip::Rrip;
pub use ship::Ship;

use crate::cache::LocalityHint;
use cosmos_common::LineAddr;

/// A read-only view of one occupied way, given to
/// [`ReplacementPolicy::choose_victim`].
#[derive(Clone, Copy, Debug)]
pub struct WayView {
    /// The resident line.
    pub line: LineAddr,
    /// RL locality annotation, if any (used by [`Lcr`]).
    pub hint: Option<LocalityHint>,
    /// Whether the line is dirty.
    pub dirty: bool,
    /// Whether the line has seen a demand access since fill.
    pub demand_used: bool,
}

/// A cache replacement policy.
///
/// The cache calls `on_hit` / `on_fill` / `on_evict` as lines are touched,
/// and `choose_victim` when a fill finds its set full. Policies keep any
/// per-set state they need (recency stacks, RRPVs, predictors) internally.
pub trait ReplacementPolicy: Send {
    /// Called when `line`, resident in `(set, way)`, takes a demand hit.
    fn on_hit(&mut self, set: usize, way: usize, line: LineAddr);

    /// Called after `line` is installed into `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize, line: LineAddr, hint: Option<LocalityHint>);

    /// Called when `line` leaves `(set, way)`. `reused` is whether it ever
    /// took a demand hit while resident.
    fn on_evict(&mut self, set: usize, way: usize, line: LineAddr, reused: bool);

    /// Picks the victim way in a full set. `ways` has one entry per way, in
    /// way order. Must return an index `< ways.len()`.
    fn choose_victim(&mut self, set: usize, ways: &[WayView]) -> usize;

    /// Short policy name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Replacement-policy selector for runtime configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True least-recently-used.
    Lru,
    /// Uniform-random victim (seeded).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Static RRIP with 2-bit RRPVs (insert 2, max 3).
    Rrip,
    /// Dynamic RRIP with SRRIP/BRRIP set dueling.
    Drrip,
    /// Signature-based Hit Predictor (16 K SHCT, 3-bit RRPV).
    Ship,
    /// Sampled reuse-distance (ETA) policy, after Mockingjay.
    Mockingjay,
    /// Locality-Centric Replacement (paper Algorithm 2).
    Lcr,
}

impl PolicyKind {
    /// Instantiates the policy for a cache with `sets` sets and `ways` ways.
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
            PolicyKind::Random { seed } => Box::new(RandomRepl::new(seed)),
            PolicyKind::Rrip => Box::new(Rrip::new(sets, ways)),
            PolicyKind::Drrip => Box::new(Drrip::new(sets, ways)),
            PolicyKind::Ship => Box::new(Ship::new(sets, ways)),
            PolicyKind::Mockingjay => Box::new(Mockingjay::new(sets, ways)),
            PolicyKind::Lcr => Box::new(Lcr::new(sets, ways)),
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random { .. } => "Random",
            PolicyKind::Rrip => "RRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Mockingjay => "Mockingjay",
            PolicyKind::Lcr => "LCR",
        };
        f.write_str(s)
    }
}
