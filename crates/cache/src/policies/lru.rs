//! True LRU replacement.

use super::{ReplacementPolicy, WayView};
use crate::cache::LocalityHint;
use cosmos_common::LineAddr;

/// Least-recently-used replacement using a per-way logical timestamp.
#[derive(Debug)]
pub struct Lru {
    ways: usize,
    clock: u64,
    last_touch: Vec<u64>,
}

impl Lru {
    /// Creates LRU state for a `sets` × `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            clock: 0,
            last_touch: vec![0; sets * ways],
        }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.last_touch[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, set: usize, way: usize, _line: LineAddr) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: LineAddr, _hint: Option<LocalityHint>) {
        self.touch(set, way);
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr, _reused: bool) {}

    fn choose_victim(&mut self, set: usize, ways: &[WayView]) -> usize {
        let base = set * self.ways;
        (0..ways.len())
            .min_by_key(|&w| self.last_touch[base + w])
            .expect("set has at least one way")
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> Vec<WayView> {
        (0..4)
            .map(|i| WayView {
                line: LineAddr::new(i),
                hint: None,
                dirty: false,
                demand_used: true,
            })
            .collect()
    }

    #[test]
    fn victim_is_least_recently_touched() {
        let mut p = Lru::new(2, 4);
        for w in 0..4 {
            p.on_fill(1, w, LineAddr::new(w as u64), None);
        }
        p.on_hit(1, 0, LineAddr::new(0));
        p.on_hit(1, 2, LineAddr::new(2));
        assert_eq!(p.choose_victim(1, &view()), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = Lru::new(2, 2);
        p.on_fill(0, 0, LineAddr::new(0), None);
        p.on_fill(1, 0, LineAddr::new(1), None);
        p.on_fill(0, 1, LineAddr::new(2), None);
        p.on_fill(1, 1, LineAddr::new(3), None);
        p.on_hit(0, 0, LineAddr::new(0));
        // Set 1 way order untouched by set-0 hit: victim is way 0.
        assert_eq!(p.choose_victim(1, &view()[..2]), 0);
        assert_eq!(p.choose_victim(0, &view()[..2]), 1);
    }
}
