//! Locality-Centric Replacement (LCR) — paper Algorithm 2.
//!
//! Each resident counter line carries an RL annotation ([`LocalityHint`]):
//! a 1-bit good/bad locality flag and an 8-bit score (the quantized Q-value
//! behind the prediction). The victim search, per Algorithm 2:
//!
//! 1. among lines flagged *bad* locality, evict the one with the **highest**
//!    bad score (most confidently bad);
//! 2. if every line is flagged good, evict the one with the **lowest**
//!    good score (least confidently good).
//!
//! Lines with no annotation (filled without an RL prediction) are treated
//! as bad-locality with score 0 — they are preferred over annotated good
//! lines but lose to confidently-bad lines. Ties fall back to LRU order so
//! that behaviour degrades gracefully to LRU when the predictor is
//! uninformative.

use super::{ReplacementPolicy, WayView};
use crate::cache::LocalityHint;
use cosmos_common::LineAddr;

/// LCR replacement (paper Algorithm 2) with LRU tie-breaking.
#[derive(Debug)]
pub struct Lcr {
    ways: usize,
    clock: u64,
    last_touch: Vec<u64>,
}

impl Lcr {
    /// Creates LCR state for a `sets` × `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            clock: 0,
            last_touch: vec![0; sets * ways],
        }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.last_touch[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for Lcr {
    fn on_hit(&mut self, set: usize, way: usize, _line: LineAddr) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: LineAddr, _hint: Option<LocalityHint>) {
        self.touch(set, way);
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr, _reused: bool) {}

    fn choose_victim(&mut self, set: usize, ways: &[WayView]) -> usize {
        let base = set * self.ways;
        let mut best_bad: Option<(usize, u8, u64)> = None; // way, score, last_touch
        let mut best_good: Option<(usize, u8, u64)> = None;
        for (w, view) in ways.iter().enumerate() {
            let hint = view.hint.unwrap_or(LocalityHint {
                good: false,
                score: 0,
            });
            let touch = self.last_touch[base + w];
            if hint.good {
                // Lowest good score; tie -> older (smaller touch).
                let cand = (w, hint.score, touch);
                best_good = Some(match best_good {
                    None => cand,
                    Some(cur) if (hint.score, touch) < (cur.1, cur.2) => cand,
                    Some(cur) => cur,
                });
            } else {
                // Highest bad score; tie -> older.
                let cand = (w, hint.score, touch);
                best_bad = Some(match best_bad {
                    None => cand,
                    Some(cur)
                        if (core::cmp::Reverse(hint.score), touch)
                            < (core::cmp::Reverse(cur.1), cur.2) =>
                    {
                        cand
                    }
                    Some(cur) => cur,
                });
            }
        }
        best_bad
            .or(best_good)
            .map(|(w, _, _)| w)
            .expect("non-empty set")
    }

    fn name(&self) -> &'static str {
        "LCR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn way(line: u64, hint: Option<(bool, u8)>) -> WayView {
        WayView {
            line: LineAddr::new(line),
            hint: hint.map(|(good, score)| LocalityHint { good, score }),
            dirty: false,
            demand_used: true,
        }
    }

    #[test]
    fn evicts_highest_scoring_bad_line() {
        let mut p = Lcr::new(1, 4);
        let ways = vec![
            way(0, Some((false, 10))),
            way(1, Some((false, 200))),
            way(2, Some((true, 5))),
            way(3, Some((true, 250))),
        ];
        assert_eq!(p.choose_victim(0, &ways), 1);
    }

    #[test]
    fn all_good_evicts_lowest_score() {
        let mut p = Lcr::new(1, 3);
        let ways = vec![
            way(0, Some((true, 90))),
            way(1, Some((true, 10))),
            way(2, Some((true, 170))),
        ];
        assert_eq!(p.choose_victim(0, &ways), 1);
    }

    #[test]
    fn unannotated_treated_as_bad_score_zero() {
        let mut p = Lcr::new(1, 3);
        // bad(60) beats unannotated (bad 0); good survives.
        let ways = vec![
            way(0, None),
            way(1, Some((false, 60))),
            way(2, Some((true, 1))),
        ];
        assert_eq!(p.choose_victim(0, &ways), 1);
        // With only unannotated + good, unannotated goes first.
        let ways = vec![
            way(0, None),
            way(1, Some((true, 1))),
            way(2, Some((true, 9))),
        ];
        assert_eq!(p.choose_victim(0, &ways), 0);
    }

    #[test]
    fn lru_breaks_ties() {
        let mut p = Lcr::new(1, 2);
        p.on_fill(0, 0, LineAddr::new(0), None);
        p.on_fill(0, 1, LineAddr::new(1), None);
        p.on_hit(0, 0, LineAddr::new(0)); // way 1 now older
        let ways = vec![way(0, Some((false, 7))), way(1, Some((false, 7)))];
        assert_eq!(p.choose_victim(0, &ways), 1);
    }

    #[test]
    fn good_lines_protected_from_bad() {
        let mut p = Lcr::new(1, 2);
        // Even a barely-good line outlives a barely-bad one.
        let ways = vec![way(0, Some((true, 0))), way(1, Some((false, 0)))];
        assert_eq!(p.choose_victim(0, &ways), 1);
    }
}
