//! Random replacement (seeded, deterministic).

use super::{ReplacementPolicy, WayView};
use crate::cache::LocalityHint;
use cosmos_common::{LineAddr, SplitMix64};

/// Picks a uniformly random victim way. Deterministic under a fixed seed.
#[derive(Debug)]
pub struct RandomRepl {
    rng: SplitMix64,
}

impl RandomRepl {
    /// Creates the policy with an RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: cosmos_common::rng::streams::REPLACEMENT_RANDOM.derive(seed),
        }
    }
}

impl ReplacementPolicy for RandomRepl {
    fn on_hit(&mut self, _set: usize, _way: usize, _line: LineAddr) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _line: LineAddr, _hint: Option<LocalityHint>) {}

    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr, _reused: bool) {}

    fn choose_victim(&mut self, _set: usize, ways: &[WayView]) -> usize {
        self.rng.next_index(ways.len())
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_are_in_range_and_cover_ways() {
        let mut p = RandomRepl::new(1);
        let ways: Vec<WayView> = (0..8)
            .map(|i| WayView {
                line: LineAddr::new(i),
                hint: None,
                dirty: false,
                demand_used: false,
            })
            .collect();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = p.choose_victim(0, &ways);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all ways should be chosen eventually"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let ways: Vec<WayView> = (0..4)
            .map(|i| WayView {
                line: LineAddr::new(i),
                hint: None,
                dirty: false,
                demand_used: false,
            })
            .collect();
        let mut a = RandomRepl::new(42);
        let mut b = RandomRepl::new(42);
        for _ in 0..100 {
            assert_eq!(a.choose_victim(0, &ways), b.choose_victim(0, &ways));
        }
    }
}
