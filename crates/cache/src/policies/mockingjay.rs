//! Mockingjay-style sampled reuse-distance replacement (Shah et al.,
//! HPCA 2022), simplified.
//!
//! Mockingjay learns per-signature reuse distances from a sampled subset of
//! accesses and evicts the line with the highest *estimated time of arrival*
//! (ETA = last access time + predicted reuse distance). This module keeps
//! its eviction criterion (max ETA, with never-to-return lines preferred)
//! and its sampled-learning structure, while indexing the reuse-distance
//! predictor by hashed line address instead of PC (the CTR-cache stream the
//! paper studies has no PCs; the paper's own Figure-5 setup is a 4,096-entry
//! sampled cache that "dynamically learns reuse distances").

use super::{ReplacementPolicy, WayView};
use crate::cache::LocalityHint;
use cosmos_common::hash::hash_key;
use cosmos_common::LineAddr;

const SAMPLER_ENTRIES: usize = 4096;
const PREDICTOR_ENTRIES: usize = 8192;
/// Reuse distances above this are treated as "no predicted return".
const INFINITE_RD: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct SamplerEntry {
    line: u64,
    last_seen: u64,
    valid: bool,
}

/// Sampled-ETA replacement.
#[derive(Debug)]
pub struct Mockingjay {
    ways: usize,
    clock: u64,
    /// Last access time of each resident (set, way).
    last_access: Vec<u64>,
    /// Direct-mapped access sampler: line -> last time it was seen.
    sampler: Vec<SamplerEntry>,
    /// EWMA of observed reuse distance per hashed line; `INFINITE_RD` when
    /// nothing has been learned.
    predicted_rd: Vec<u32>,
}

impl Mockingjay {
    /// Creates the policy for a `sets` × `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            clock: 0,
            last_access: vec![0; sets * ways],
            sampler: vec![
                SamplerEntry {
                    line: 0,
                    last_seen: 0,
                    valid: false,
                };
                SAMPLER_ENTRIES
            ],
            predicted_rd: vec![INFINITE_RD; PREDICTOR_ENTRIES],
        }
    }

    fn observe(&mut self, line: LineAddr) {
        self.clock += 1;
        let now = self.clock;
        let slot = hash_key(line.index(), SAMPLER_ENTRIES);
        let entry = &mut self.sampler[slot];
        if entry.valid && entry.line == line.index() {
            let observed = (now - entry.last_seen).min(INFINITE_RD as u64 - 1) as u32;
            let p = hash_key(line.index(), PREDICTOR_ENTRIES);
            let old = self.predicted_rd[p];
            self.predicted_rd[p] = if old == INFINITE_RD {
                observed
            } else {
                // EWMA with 1/4 new weight.
                old - old / 4 + observed / 4
            };
        }
        *entry = SamplerEntry {
            line: line.index(),
            last_seen: now,
            valid: true,
        };
    }

    fn eta(&self, set: usize, way: usize, line: LineAddr) -> u64 {
        let rd = self.predicted_rd[hash_key(line.index(), PREDICTOR_ENTRIES)];
        if rd == INFINITE_RD {
            u64::MAX
        } else {
            self.last_access[set * self.ways + way].saturating_add(rd as u64)
        }
    }
}

impl ReplacementPolicy for Mockingjay {
    fn on_hit(&mut self, set: usize, way: usize, line: LineAddr) {
        self.observe(line);
        self.last_access[set * self.ways + way] = self.clock;
    }

    fn on_fill(&mut self, set: usize, way: usize, line: LineAddr, _hint: Option<LocalityHint>) {
        self.observe(line);
        self.last_access[set * self.ways + way] = self.clock;
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr, _reused: bool) {}

    fn choose_victim(&mut self, set: usize, ways: &[WayView]) -> usize {
        (0..ways.len())
            .max_by_key(|&w| self.eta(set, w, ways[w].line))
            .expect("set has at least one way")
    }

    fn name(&self) -> &'static str {
        "Mockingjay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(lines: &[u64]) -> Vec<WayView> {
        lines
            .iter()
            .map(|&l| WayView {
                line: LineAddr::new(l),
                hint: None,
                dirty: false,
                demand_used: true,
            })
            .collect()
    }

    #[test]
    fn unlearned_lines_evicted_first() {
        let mut p = Mockingjay::new(1, 2);
        let hot = LineAddr::new(1);
        let cold = LineAddr::new(2);
        // Teach the predictor that `hot` has short reuse.
        p.on_fill(0, 0, hot, None);
        for _ in 0..8 {
            p.on_hit(0, 0, hot);
        }
        p.on_fill(0, 1, cold, None);
        // cold has no learned reuse -> infinite ETA -> victim.
        assert_eq!(p.choose_victim(0, &views(&[1, 2])), 1);
    }

    #[test]
    fn learns_reuse_distance() {
        let mut p = Mockingjay::new(1, 4);
        let line = LineAddr::new(9);
        p.on_fill(0, 0, line, None);
        p.on_hit(0, 0, line);
        let idx = hash_key(line.index(), PREDICTOR_ENTRIES);
        assert_ne!(p.predicted_rd[idx], INFINITE_RD);
    }

    #[test]
    fn farther_eta_is_evicted() {
        let mut p = Mockingjay::new(1, 2);
        let near = LineAddr::new(3);
        let far = LineAddr::new(4);
        // near: reuse distance ~1; far: large reuse distance.
        p.on_fill(0, 0, near, None);
        p.on_hit(0, 0, near);
        p.on_hit(0, 0, near);
        p.on_fill(0, 1, far, None);
        for _ in 0..200 {
            p.on_hit(0, 0, near);
        }
        p.on_hit(0, 1, far); // observed rd ~201 for far
        p.on_hit(0, 0, near);
        let v = p.choose_victim(0, &views(&[3, 4]));
        assert_eq!(v, 1, "line with larger predicted reuse distance evicted");
    }
}
