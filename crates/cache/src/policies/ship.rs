//! SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! Each line carries a signature (here: a hash of its line address — the
//! CTR-cache access stream has no PCs); a Signature History Counter Table
//! (SHCT) of saturating counters learns whether lines with that signature
//! tend to be re-referenced. Lines whose signature has a zero counter are
//! inserted at distant RRPV; others at intermediate. The paper's Figure-5
//! configuration: 16,384-entry SHCT, maximum RRPV 7.

use super::{ReplacementPolicy, WayView};
use crate::cache::LocalityHint;
use cosmos_common::hash::hash_key;
use cosmos_common::LineAddr;

const MAX_RRPV: u8 = 7;
const SHCT_ENTRIES: usize = 16_384;
const SHCT_MAX: u8 = 7;

/// SHiP replacement.
#[derive(Debug)]
pub struct Ship {
    ways: usize,
    rrpv: Vec<u8>,
    sig: Vec<u16>,
    reused: Vec<bool>,
    shct: Vec<u8>,
}

impl Ship {
    /// Creates SHiP state for a `sets` × `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![MAX_RRPV; sets * ways],
            sig: vec![0; sets * ways],
            reused: vec![false; sets * ways],
            // Weakly "reuse-friendly" start.
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    #[inline]
    fn signature(line: LineAddr) -> u16 {
        hash_key(line.index(), SHCT_ENTRIES) as u16
    }
}

impl ReplacementPolicy for Ship {
    fn on_hit(&mut self, set: usize, way: usize, _line: LineAddr) {
        let idx = set * self.ways + way;
        self.rrpv[idx] = 0;
        if !self.reused[idx] {
            self.reused[idx] = true;
            let s = self.sig[idx] as usize;
            self.shct[s] = (self.shct[s] + 1).min(SHCT_MAX);
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, line: LineAddr, _hint: Option<LocalityHint>) {
        let idx = set * self.ways + way;
        let sig = Self::signature(line);
        self.sig[idx] = sig;
        self.reused[idx] = false;
        self.rrpv[idx] = if self.shct[sig as usize] == 0 {
            MAX_RRPV
        } else {
            MAX_RRPV - 1
        };
    }

    fn on_evict(&mut self, set: usize, way: usize, _line: LineAddr, reused: bool) {
        let idx = set * self.ways + way;
        if !reused {
            let s = self.sig[idx] as usize;
            self.shct[s] = self.shct[s].saturating_sub(1);
        }
    }

    fn choose_victim(&mut self, set: usize, ways: &[WayView]) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..ways.len()).find(|&w| self.rrpv[base + w] >= MAX_RRPV) {
                return w;
            }
            for w in 0..ways.len() {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "SHiP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize) -> Vec<WayView> {
        (0..n)
            .map(|i| WayView {
                line: LineAddr::new(i as u64),
                hint: None,
                dirty: false,
                demand_used: false,
            })
            .collect()
    }

    #[test]
    fn no_reuse_signature_inserted_distant() {
        let mut p = Ship::new(1, 2);
        let line = LineAddr::new(77);
        let sig = Ship::signature(line) as usize;
        // Drive the signature's counter to zero via unreused evictions.
        for _ in 0..4 {
            p.on_fill(0, 0, line, None);
            p.on_evict(0, 0, line, false);
        }
        assert_eq!(p.shct[sig], 0);
        p.on_fill(0, 0, line, None);
        assert_eq!(p.rrpv[0], MAX_RRPV, "dead signature inserted at max RRPV");
    }

    #[test]
    fn reused_signature_inserted_closer() {
        let mut p = Ship::new(1, 2);
        let line = LineAddr::new(5);
        p.on_fill(0, 0, line, None);
        p.on_hit(0, 0, line);
        p.on_evict(0, 0, line, true);
        p.on_fill(0, 1, line, None);
        assert_eq!(p.rrpv[1], MAX_RRPV - 1);
    }

    #[test]
    fn hit_promotes_to_zero() {
        let mut p = Ship::new(1, 2);
        p.on_fill(0, 0, LineAddr::new(1), None);
        p.on_hit(0, 0, LineAddr::new(1));
        assert_eq!(p.rrpv[0], 0);
    }

    #[test]
    fn victim_prefers_distant_line() {
        let mut p = Ship::new(1, 2);
        p.on_fill(0, 0, LineAddr::new(1), None);
        p.on_fill(0, 1, LineAddr::new(2), None);
        p.on_hit(0, 0, LineAddr::new(1));
        assert_eq!(p.choose_victim(0, &views(2)), 1);
    }
}
