//! DRRIP: Dynamic RRIP with set dueling (Jaleel et al., ISCA 2010).
//!
//! Two insertion policies compete on dedicated sampled sets: SRRIP (insert
//! at `max-1`) and BRRIP (insert at `max`, occasionally `max-1`). A PSEL
//! counter tracks which sampler misses less, and follower sets adopt the
//! winner. Included as the natural completion of the RRIP family; the
//! Figure-5 study uses static RRIP as in the paper.

use super::{ReplacementPolicy, WayView};
use crate::cache::LocalityHint;
use cosmos_common::{LineAddr, SplitMix64};

const MAX_RRPV: u8 = 3;
/// 1-in-32 BRRIP insertions land at `max-1`.
const BRRIP_NEAR_RATE: f64 = 1.0 / 32.0;
const PSEL_MAX: i32 = 1023;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SetRole {
    SrripSample,
    BrripSample,
    Follower,
}

/// Dynamic RRIP with set dueling.
#[derive(Debug)]
pub struct Drrip {
    ways: usize,
    rrpv: Vec<u8>,
    roles: Vec<SetRole>,
    /// Positive favors SRRIP (BRRIP sampler missed more), negative BRRIP.
    psel: i32,
    rng: SplitMix64,
}

impl Drrip {
    /// Creates DRRIP state for a `sets` × `ways` cache; every 32nd set
    /// samples SRRIP and every 32nd (offset 16) samples BRRIP.
    pub fn new(sets: usize, ways: usize) -> Self {
        let roles = (0..sets)
            .map(|s| match s % 32 {
                0 => SetRole::SrripSample,
                16 => SetRole::BrripSample,
                _ => SetRole::Follower,
            })
            .collect();
        Self {
            ways,
            rrpv: vec![MAX_RRPV; sets * ways],
            roles,
            psel: 0,
            rng: cosmos_common::rng::streams::DRRIP.derive(0),
        }
    }

    fn use_srrip(&mut self, set: usize) -> bool {
        match self.roles[set] {
            SetRole::SrripSample => true,
            SetRole::BrripSample => false,
            SetRole::Follower => self.psel >= 0,
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn on_hit(&mut self, set: usize, way: usize, _line: LineAddr) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: LineAddr, _hint: Option<LocalityHint>) {
        // A fill is a miss: duel accounting first.
        match self.roles[set] {
            SetRole::SrripSample => self.psel = (self.psel - 1).max(-PSEL_MAX),
            SetRole::BrripSample => self.psel = (self.psel + 1).min(PSEL_MAX),
            SetRole::Follower => {}
        }
        let srrip = self.use_srrip(set);
        let insert = if srrip || self.rng.chance(BRRIP_NEAR_RATE) {
            MAX_RRPV - 1
        } else {
            MAX_RRPV
        };
        self.rrpv[set * self.ways + way] = insert;
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr, _reused: bool) {}

    fn choose_victim(&mut self, set: usize, ways: &[WayView]) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..ways.len()).find(|&w| self.rrpv[base + w] >= MAX_RRPV) {
                return w;
            }
            for w in 0..ways.len() {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "DRRIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize) -> Vec<WayView> {
        (0..n)
            .map(|i| WayView {
                line: LineAddr::new(i as u64),
                hint: None,
                dirty: false,
                demand_used: false,
            })
            .collect()
    }

    #[test]
    fn sampler_roles_assigned() {
        let p = Drrip::new(64, 4);
        assert_eq!(p.roles[0], SetRole::SrripSample);
        assert_eq!(p.roles[16], SetRole::BrripSample);
        assert_eq!(p.roles[1], SetRole::Follower);
        assert_eq!(p.roles[32], SetRole::SrripSample);
    }

    #[test]
    fn psel_moves_with_sampler_misses() {
        let mut p = Drrip::new(64, 4);
        let before = p.psel;
        p.on_fill(0, 0, LineAddr::new(1), None); // SRRIP sampler miss
        assert!(p.psel < before);
        p.on_fill(16, 0, LineAddr::new(2), None); // BRRIP sampler miss
        p.on_fill(16, 1, LineAddr::new(3), None);
        assert!(p.psel > before - 1);
    }

    #[test]
    fn brrip_sampler_inserts_distant() {
        let mut p = Drrip::new(64, 4);
        // BRRIP inserts at MAX almost always.
        let mut distant = 0;
        for w in 0..4 {
            p.on_fill(16, w, LineAddr::new(w as u64), None);
            if p.rrpv[16 * 4 + w] == MAX_RRPV {
                distant += 1;
            }
        }
        assert!(distant >= 3);
        // SRRIP sampler inserts at MAX-1 always.
        p.on_fill(0, 0, LineAddr::new(9), None);
        assert_eq!(p.rrpv[0], MAX_RRPV - 1);
    }

    #[test]
    fn victim_selection_terminates() {
        let mut p = Drrip::new(64, 4);
        for w in 0..4 {
            p.on_fill(5, w, LineAddr::new(w as u64), None);
            p.on_hit(5, w, LineAddr::new(w as u64));
        }
        let v = p.choose_victim(5, &views(4));
        assert!(v < 4);
    }
}
