//! Static RRIP (Re-Reference Interval Prediction), Jaleel et al., ISCA 2010.
//!
//! 2-bit re-reference prediction values (RRPV): lines are inserted with
//! RRPV 2 ("long re-reference"), promoted to 0 on hit, and the victim is a
//! line with RRPV 3 (aging all lines when none qualifies). This matches the
//! paper's Figure-5 configuration (initial 2, max 3).

use super::{ReplacementPolicy, WayView};
use crate::cache::LocalityHint;
use cosmos_common::LineAddr;

const MAX_RRPV: u8 = 3;
const INSERT_RRPV: u8 = 2;

/// Static RRIP replacement.
#[derive(Debug)]
pub struct Rrip {
    ways: usize,
    rrpv: Vec<u8>,
}

impl Rrip {
    /// Creates RRIP state for a `sets` × `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![MAX_RRPV; sets * ways],
        }
    }
}

impl ReplacementPolicy for Rrip {
    fn on_hit(&mut self, set: usize, way: usize, _line: LineAddr) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: LineAddr, _hint: Option<LocalityHint>) {
        self.rrpv[set * self.ways + way] = INSERT_RRPV;
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr, _reused: bool) {}

    fn choose_victim(&mut self, set: usize, ways: &[WayView]) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..ways.len()).find(|&w| self.rrpv[base + w] >= MAX_RRPV) {
                return w;
            }
            for w in 0..ways.len() {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "RRIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize) -> Vec<WayView> {
        (0..n)
            .map(|i| WayView {
                line: LineAddr::new(i as u64),
                hint: None,
                dirty: false,
                demand_used: false,
            })
            .collect()
    }

    #[test]
    fn fresh_lines_not_evicted_before_stale() {
        let mut p = Rrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, LineAddr::new(w as u64), None);
        }
        // Hit way 1: RRPV 0; others stay at 2.
        p.on_hit(0, 1, LineAddr::new(1));
        let v = p.choose_victim(0, &views(4));
        assert_ne!(v, 1, "recently hit line must survive");
    }

    #[test]
    fn aging_terminates_and_selects() {
        let mut p = Rrip::new(1, 2);
        p.on_fill(0, 0, LineAddr::new(0), None);
        p.on_fill(0, 1, LineAddr::new(1), None);
        p.on_hit(0, 0, LineAddr::new(0));
        p.on_hit(0, 1, LineAddr::new(1));
        // Both at RRPV 0: aging must raise both to 3 and pick way 0.
        assert_eq!(p.choose_victim(0, &views(2)), 0);
    }

    #[test]
    fn initial_state_is_distant() {
        let mut p = Rrip::new(1, 2);
        // Never filled: victim immediately available.
        assert_eq!(p.choose_victim(0, &views(2)), 0);
    }
}
