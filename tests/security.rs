//! Security-property integration tests: the functional AES-CTR + MAC +
//! Merkle engine must detect every tampering vector, under both directed
//! and randomized (property-based) attacks.

use cosmos::common::LineAddr;
use cosmos::secure::{CounterScheme, SecureMemory, SecurityError};
use proptest::prelude::*;

#[test]
fn attack_matrix() {
    let mut m = SecureMemory::new(1 << 28, CounterScheme::MorphCtr, [0x11; 16]);
    let line = LineAddr::new(4096);
    m.write(line, &[1u8; 64]);

    // Tamper.
    m.tamper_data(line);
    assert_eq!(m.read(line), Err(SecurityError::MacMismatch));
    m.write(line, &[2u8; 64]);

    // Replay.
    let stale = m.snapshot(line);
    m.write(line, &[3u8; 64]);
    m.replay(line, &stale);
    assert_eq!(m.read(line), Err(SecurityError::MacMismatch));
    m.write(line, &[4u8; 64]);

    // Counter tamper.
    m.tamper_counter(line);
    assert_eq!(m.read(line), Err(SecurityError::TreeMismatch));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_any_data(line in 0u64..1_000_000, data in prop::array::uniform32(any::<u8>())) {
        let mut m = SecureMemory::new(1 << 28, CounterScheme::MorphCtr, [0x22; 16]);
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&data);
        full[32..].copy_from_slice(&data);
        let addr = LineAddr::new(line);
        m.write(addr, &full);
        prop_assert_eq!(m.read(addr).unwrap(), full);
    }

    #[test]
    fn replay_always_detected(line in 0u64..100_000, writes in 1usize..8) {
        let mut m = SecureMemory::new(1 << 28, CounterScheme::MorphCtr, [0x33; 16]);
        let addr = LineAddr::new(line);
        m.write(addr, &[0xAA; 64]);
        let stale = m.snapshot(addr);
        for i in 0..writes {
            m.write(addr, &[i as u8; 64]);
        }
        m.replay(addr, &stale);
        prop_assert!(m.read(addr).is_err());
    }

    #[test]
    fn interleaved_lines_do_not_corrupt(lines in prop::collection::vec(0u64..50_000, 2..20)) {
        let mut m = SecureMemory::new(1 << 28, CounterScheme::Split, [0x44; 16]);
        for (i, &l) in lines.iter().enumerate() {
            m.write(LineAddr::new(l), &[i as u8; 64]);
        }
        // Last write wins per line.
        let mut expected = std::collections::HashMap::new();
        for (i, &l) in lines.iter().enumerate() {
            expected.insert(l, i as u8);
        }
        for (&l, &v) in &expected {
            prop_assert_eq!(m.read(LineAddr::new(l)).unwrap(), [v; 64]);
        }
    }
}
