//! Cross-crate integration tests: the full simulator over real workload
//! traces, across every design.

use cosmos::core::{Design, SimConfig, Simulator};
use cosmos::workloads::{graph::GraphKernel, spec::SpecKind, TraceSpec, Workload};

fn small_spec(seed: u64) -> TraceSpec {
    let mut s = TraceSpec::small_test(seed);
    s.accesses = 30_000;
    s
}

const ALL_DESIGNS: [Design; 6] = [
    Design::Np,
    Design::MorphCtr,
    Design::Emcc,
    Design::CosmosDp,
    Design::CosmosCp,
    Design::Cosmos,
];

#[test]
fn every_design_runs_every_workload_family() {
    let spec = small_spec(1);
    for w in [
        Workload::Graph(GraphKernel::Bfs),
        Workload::Spec(SpecKind::Mcf),
        Workload::Ml(cosmos::workloads::ml::MlModel::Mlp),
    ] {
        let trace = w.generate(&spec);
        for d in ALL_DESIGNS {
            let stats = Simulator::new(SimConfig::paper_default(d)).run(&trace);
            assert_eq!(stats.accesses, trace.len() as u64, "{w}/{d}");
            assert!(stats.cycles > 0, "{w}/{d}");
            assert!(
                stats.ipc() > 0.0 && stats.ipc() < 1.0,
                "{w}/{d}: ipc {}",
                stats.ipc()
            );
        }
    }
}

#[test]
fn secure_designs_generate_metadata_traffic_np_does_not() {
    let spec = small_spec(2);
    let trace = Workload::Spec(SpecKind::Canneal).generate(&spec);
    for d in ALL_DESIGNS {
        let stats = Simulator::new(SimConfig::paper_default(d)).run(&trace);
        if d.is_secure() {
            assert!(stats.traffic.ctr_reads > 0, "{d}: no counter traffic");
            assert!(stats.traffic.mt_reads > 0, "{d}: no tree traffic");
            assert!(
                stats.traffic.total() > stats.traffic.data_reads + stats.traffic.data_writes,
                "{d}: metadata traffic missing"
            );
        } else {
            assert_eq!(
                stats.traffic.metadata_total(),
                0,
                "NP must be metadata-free"
            );
        }
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let spec = small_spec(3);
    let trace = Workload::Graph(GraphKernel::Dfs).generate(&spec);
    for d in [Design::Cosmos, Design::MorphCtr] {
        let a = Simulator::new(SimConfig::paper_default(d)).run(&trace);
        let b = Simulator::new(SimConfig::paper_default(d)).run(&trace);
        assert_eq!(a.cycles, b.cycles, "{d}");
        assert_eq!(a.traffic, b.traffic, "{d}");
        assert_eq!(a.instructions, b.instructions, "{d}");
    }
}

#[test]
fn instruction_count_matches_trace() {
    let spec = small_spec(4);
    let trace = Workload::Graph(GraphKernel::Pr).generate(&spec);
    let expected: u64 = trace.iter().map(|a| a.inst_gap as u64 + 1).sum();
    let stats = Simulator::new(SimConfig::paper_default(Design::Cosmos)).run(&trace);
    assert_eq!(stats.instructions, expected);
}

#[test]
fn predictors_engage_on_cosmos_designs_only() {
    let spec = small_spec(5);
    let trace = Workload::Graph(GraphKernel::Gc).generate(&spec);
    let full = Simulator::new(SimConfig::paper_default(Design::Cosmos)).run(&trace);
    assert!(full.data_pred.total() > 0);
    assert!(full.ctr_pred.predictions > 0);
    let mc = Simulator::new(SimConfig::paper_default(Design::MorphCtr)).run(&trace);
    assert_eq!(mc.data_pred.total(), 0);
    assert_eq!(mc.ctr_pred.predictions, 0);
}

#[test]
fn smat_orders_np_below_secure() {
    use cosmos::core::smat::smat;
    let spec = small_spec(6);
    let trace = Workload::Spec(SpecKind::Omnetpp).generate(&spec);
    let np_cfg = SimConfig::paper_default(Design::Np);
    let mc_cfg = SimConfig::paper_default(Design::MorphCtr);
    let np = Simulator::new(np_cfg.clone()).run(&trace);
    let mc = Simulator::new(mc_cfg.clone()).run(&trace);
    assert!(
        smat(&mc_cfg, &mc).total > smat(&np_cfg, &np).total,
        "secure SMAT must exceed NP"
    );
}

#[test]
fn eight_core_config_runs() {
    let mut spec = small_spec(7).with_cores(8);
    spec.accesses = 30_000;
    let trace = Workload::Graph(GraphKernel::Cc).generate(&spec);
    assert_eq!(trace.core_count(), 8);
    let stats = Simulator::new(SimConfig::eight_core(Design::Cosmos)).run(&trace);
    assert_eq!(stats.accesses, trace.len() as u64);
}

#[test]
fn traffic_breakdown_is_consistent() {
    let spec = small_spec(8);
    let trace = Workload::Graph(GraphKernel::Sp).generate(&spec);
    let stats = Simulator::new(SimConfig::paper_default(Design::Cosmos)).run(&trace);
    let t = &stats.traffic;
    let sum = t.data_reads
        + t.data_writes
        + t.ctr_reads
        + t.ctr_writes
        + t.mt_reads
        + t.mt_writes
        + t.mac_reads
        + t.mac_writes
        + t.reencrypt_writes
        + t.killed_speculative;
    assert_eq!(t.total(), sum);
    // DRAM served at least the demand reads and metadata reads we charged.
    assert!(stats.dram.requests() >= t.data_reads + t.ctr_reads + t.mt_reads);
}

#[test]
fn streaming_source_matches_materialized_distribution() {
    use cosmos::workloads::streaming::{Repeat, StreamingSpec};
    // Run the simulator off a lazy source; results must be sane and
    // deterministic.
    let mut src = StreamingSpec::new(SpecKind::Mcf, 16 << 20, 4, 20_000, 9);
    let stats = Simulator::new(SimConfig::paper_default(Design::Cosmos)).run_source(&mut src);
    assert_eq!(stats.accesses, 20_000);
    assert!(
        stats.ctr_miss_rate() > 0.1,
        "mcf stream should miss the CTR cache"
    );

    // Repeat source: loop a tiny trace far beyond its length.
    let spec = small_spec(10).with_accesses(500);
    let base = Workload::Graph(GraphKernel::Dfs).generate(&spec);
    let mut looped = Repeat::new(base, 5_000);
    let stats = Simulator::new(SimConfig::paper_default(Design::MorphCtr)).run_source(&mut looped);
    assert_eq!(stats.accesses, 5_000);
    // A looped trace becomes cache-resident: after the first pass the LLC
    // absorbs everything, so the CTR path sees only the cold start.
    assert!(
        stats.ctr_cache.demand.total() < 2_000,
        "CTR stream should collapse once the loop is resident ({} accesses)",
        stats.ctr_cache.demand.total()
    );
}
