//! Reproduction-shape tests: small-scale versions of the paper's key
//! qualitative claims, kept fast enough for `cargo test`.

use cosmos::common::{MemAccess, PhysAddr, SplitMix64, Trace};
use cosmos::core::{Design, SimConfig, Simulator};
use cosmos::workloads::{graph::GraphKernel, TraceSpec, Workload};

/// An irregular multi-core trace over a working set far beyond the LLC,
/// with enough hot-block structure for the predictors to learn.
fn irregular_trace(accesses: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut t = Trace::with_capacity(accesses);
    let cold_lines = (512u64 << 20) / 64;
    let hot_lines = 4096u64;
    for i in 0..accesses {
        let line = if rng.chance(0.35) {
            rng.next_below(hot_lines)
        } else {
            hot_lines + rng.next_below(cold_lines)
        };
        let addr = PhysAddr::new((1 << 30) + line * 64);
        let core = (i % 4) as u8;
        if rng.chance(0.2) {
            t.push(MemAccess::write(core, addr, 3));
        } else {
            t.push(MemAccess::read(core, addr, 3));
        }
    }
    t
}

fn run(design: Design, trace: &Trace) -> cosmos::core::SimStats {
    Simulator::new(SimConfig::paper_default(design)).run(trace)
}

#[test]
fn security_costs_performance_on_irregular_workloads() {
    let trace = irregular_trace(60_000, 1);
    let np = run(Design::Np, &trace);
    let mc = run(Design::MorphCtr, &trace);
    assert!(
        mc.ipc() < np.ipc() * 0.98,
        "MorphCtr ({:.4}) should clearly trail NP ({:.4})",
        mc.ipc(),
        np.ipc()
    );
}

#[test]
fn cosmos_outperforms_morphctr_on_irregular_workloads() {
    let trace = irregular_trace(120_000, 2);
    let mc = run(Design::MorphCtr, &trace);
    let cosmos = run(Design::Cosmos, &trace);
    assert!(
        cosmos.ipc() > mc.ipc(),
        "COSMOS ({:.4}) must beat MorphCtr ({:.4})",
        cosmos.ipc(),
        mc.ipc()
    );
}

#[test]
fn data_predictor_learns_irregular_streams() {
    let trace = irregular_trace(120_000, 3);
    let stats = run(Design::Cosmos, &trace);
    assert!(
        stats.data_pred.accuracy() > 0.6,
        "DP accuracy {:.3} too low",
        stats.data_pred.accuracy()
    );
    assert!(stats.early_offchip_reads > 0);
}

#[test]
fn early_ctr_access_does_not_hurt_ctr_hit_rate() {
    // The post-L1 stream contains everything the post-LLC stream does plus
    // hot accesses; EMCC's CTR miss rate must not exceed MorphCtr's by a
    // meaningful margin on a graph kernel.
    let mut spec = TraceSpec::small_test(4);
    spec.accesses = 120_000;
    spec.graph_vertices = 1 << 18;
    let trace = Workload::Graph(GraphKernel::Dfs).generate(&spec);
    let mc = run(Design::MorphCtr, &trace);
    let emcc = run(Design::Emcc, &trace);
    assert!(
        emcc.ctr_miss_rate() <= mc.ctr_miss_rate() + 0.02,
        "EMCC miss {:.3} vs MorphCtr {:.3}",
        emcc.ctr_miss_rate(),
        mc.ctr_miss_rate()
    );
}

#[test]
fn locality_predictor_separates_hot_from_cold() {
    let trace = irregular_trace(120_000, 5);
    let stats = run(Design::Cosmos, &trace);
    let good = stats.ctr_pred.good_fraction();
    // The hot region is ~64 counter blocks of a much larger stream: some,
    // but not everything, should classify good.
    assert!(
        good > 0.02 && good < 0.9,
        "good fraction {good:.3} implausible"
    );
}

#[test]
fn regular_streams_see_little_secure_overhead_difference() {
    // ML workloads: COSMOS must not regress vs MorphCtr (paper Fig. 17).
    let mut spec = TraceSpec::small_test(6);
    spec.accesses = 80_000;
    let trace = Workload::Ml(cosmos::workloads::ml::MlModel::Mlp).generate(&spec);
    let mc = run(Design::MorphCtr, &trace);
    let cosmos = run(Design::Cosmos, &trace);
    assert!(
        cosmos.ipc() >= mc.ipc() * 0.97,
        "COSMOS ({:.4}) regressed vs MorphCtr ({:.4}) on a regular workload",
        cosmos.ipc(),
        mc.ipc()
    );
}

#[test]
fn storage_overhead_matches_paper_structure() {
    use cosmos::core::overhead::storage_overhead;
    let cfg = SimConfig::paper_default(Design::Cosmos).with_paper_ctr_sizes();
    let o = storage_overhead(&cfg);
    assert_eq!(o.components.len(), 4);
    let kib = o.total_kib();
    assert!((125.0..155.0).contains(&kib), "total {kib:.1} KiB");
}

#[test]
fn wrong_offchip_predictions_still_warm_the_ctr_cache() {
    // The paper credits ~30% of the CTR hit-rate gain to mispredicted
    // off-chip accesses warming the cache. Verify the mechanism: killed
    // speculative fetches exist and CTR accesses exceed LLC misses.
    let trace = irregular_trace(120_000, 7);
    let stats = run(Design::Cosmos, &trace);
    assert!(stats.traffic.killed_speculative > 0);
    assert!(stats.ctr_cache.demand.total() > stats.llc.misses());
}
